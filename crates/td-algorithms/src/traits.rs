//! The algorithm abstraction TD-AC composes over.

use td_model::DatasetView;

use crate::result::TruthResult;

/// A truth-discovery algorithm: given conflicting claims, select the true
/// value of every `(object, attribute)` cell.
///
/// Implementations must be:
///
/// * **View-polymorphic** — operate on any [`DatasetView`], whether the
///   whole dataset or one attribute cluster of a TD-AC partition;
/// * **Deterministic** — identical inputs produce identical outputs
///   (required for reproducible experiments and for TD-AC's truth-vector
///   construction to be stable);
/// * **Global-id-preserving** — `source_trust` is indexed by the parent
///   dataset's `SourceId` space even when the view restricts attributes.
pub trait TruthDiscovery {
    /// Human-readable algorithm name as it appears in the paper's tables
    /// (e.g. `"TruthFinder"`, `"Accu"`).
    fn name(&self) -> &'static str;

    /// Runs the algorithm over `view` and returns its predictions.
    fn discover(&self, view: &DatasetView<'_>) -> TruthResult;
}

// Allow passing algorithms around as trait objects (the TD-AC API takes
// `&dyn TruthDiscovery` so callers can pick the base algorithm at runtime,
// exactly like the paper's `F` parameter).
impl<T: TruthDiscovery + ?Sized> TruthDiscovery for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        (**self).discover(view)
    }
}

impl<T: TruthDiscovery + ?Sized> TruthDiscovery for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        (**self).discover(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    #[test]
    fn trait_objects_and_references_work() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a", Value::int(1)).unwrap();
        let d = b.build();
        let algo = MajorityVote;
        let by_ref: &dyn TruthDiscovery = &algo;
        let boxed: Box<dyn TruthDiscovery> = Box::new(MajorityVote);
        assert_eq!(by_ref.name(), "MajorityVote");
        assert_eq!(boxed.name(), "MajorityVote");
        assert_eq!(by_ref.discover(&d.view_all()).len(), 1);
        assert_eq!(boxed.discover(&d.view_all()).len(), 1);
        // &T blanket impl:
        assert_eq!(algo.discover(&d.view_all()).len(), 1);
    }
}
