//! Shared machinery for iterative truth-discovery algorithms: per-cell
//! candidate grouping, numerically-stable softmax, convergence tests, and
//! a precomputed per-view workspace.

use td_model::{
    AttributeId, Claim, DatasetView, ObjectId, SourceId, ValueId, ValueSimilarity,
};

/// One distinct claimed value of a cell with its supporter count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The distinct value.
    pub value: ValueId,
    /// Number of sources claiming it in this cell.
    pub count: u32,
    /// Working score (meaning is algorithm-specific).
    pub score: f64,
}

/// Groups a cell's claims into distinct candidates.
///
/// `cands` receives one entry per distinct value (scores zeroed) and
/// `claim_cand[i]` receives the candidate index of `claims[i]`. Both
/// buffers are caller-owned scratch, reused across cells to avoid per-cell
/// allocation. Candidates appear in order of first claim, and cells are
/// small (at most one claim per source), so the quadratic scan is cheap
/// and deterministic.
pub fn group_candidates(claims: &[Claim], cands: &mut Vec<Candidate>, claim_cand: &mut Vec<u32>) {
    cands.clear();
    claim_cand.clear();
    for claim in claims {
        let idx = match cands.iter().position(|c| c.value == claim.value) {
            Some(i) => {
                cands[i].count += 1;
                i
            }
            None => {
                cands.push(Candidate {
                    value: claim.value,
                    count: 1,
                    score: 0.0,
                });
                cands.len() - 1
            }
        };
        claim_cand.push(idx as u32);
    }
}

/// Index of the winning candidate: highest score, ties broken toward the
/// smallest [`ValueId`] so results never depend on grouping order.
pub fn argmax_candidate(cands: &[Candidate]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, c) in cands.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) => {
                let cb = &cands[b];
                if c.score > cb.score || (c.score == cb.score && c.value < cb.value) {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Replaces candidate scores (interpreted as log-odds / vote counts) by a
/// probability distribution via the max-shifted softmax. Safe on extreme
/// scores; an all-`-inf` input degrades to uniform.
pub fn softmax_scores(cands: &mut [Candidate]) {
    if cands.is_empty() {
        return;
    }
    let max = cands
        .iter()
        .map(|c| c.score)
        .fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        let u = 1.0 / cands.len() as f64;
        for c in cands.iter_mut() {
            c.score = u;
        }
        return;
    }
    let mut sum = 0.0;
    for c in cands.iter_mut() {
        c.score = (c.score - max).exp();
        sum += c.score;
    }
    for c in cands.iter_mut() {
        c.score /= sum;
    }
}

/// Cosine similarity between two equal-length vectors; `1.0` for two
/// zero vectors (they are "as aligned as possible").
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Largest absolute element-wise difference between two vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Clamps a probability-like score away from the 0 / 1 extremes so
/// log-odds stay finite (Dong et al. and Yin et al. both require this).
#[inline]
pub fn clamp_unit(p: f64, eps: f64) -> f64 {
    p.clamp(eps, 1.0 - eps)
}

/// Precomputed per-cell structure of a dataset view.
///
/// Iterative algorithms walk the same cells dozens of times; grouping
/// claims into candidates and (optionally) evaluating pairwise value
/// similarities once up front turns every subsequent iteration into pure
/// arithmetic over flat vectors.
#[derive(Debug, Clone)]
pub struct CellData {
    /// Object of the cell.
    pub object: ObjectId,
    /// Attribute of the cell.
    pub attribute: AttributeId,
    /// Distinct claimed values, in order of first claim.
    pub values: Vec<ValueId>,
    /// Supporter count per candidate (parallel to `values`).
    pub counts: Vec<u32>,
    /// Source of each claim of the cell.
    pub claim_sources: Vec<SourceId>,
    /// Candidate index of each claim (parallel to `claim_sources`).
    pub claim_cand: Vec<u32>,
    /// Row-major `k×k` pairwise similarity matrix over `values`; empty
    /// when similarity was not requested.
    pub sim: Vec<f64>,
}

impl CellData {
    /// Number of distinct candidates.
    #[inline]
    pub fn k(&self) -> usize {
        self.values.len()
    }

    /// Similarity between candidates `i` and `j` (requires the matrix).
    #[inline]
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        self.sim[i * self.values.len() + j]
    }
}

/// A fully materialized working copy of a view, shared by all iterative
/// algorithms in this crate.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// One entry per non-empty cell of the view.
    pub cells: Vec<CellData>,
    /// Global source-id-space size.
    pub n_sources: usize,
    /// Number of claims each source has inside the view.
    pub claims_per_source: Vec<u32>,
}

impl Workspace {
    /// Builds the workspace; pass a [`ValueSimilarity`] to also
    /// precompute per-cell pairwise similarity matrices.
    pub fn build(view: &DatasetView<'_>, similarity: Option<&ValueSimilarity>) -> Self {
        let n_sources = view.n_sources();
        let mut claims_per_source = vec![0u32; n_sources];
        let mut cells = Vec::with_capacity(view.n_cells());
        let mut cands: Vec<Candidate> = Vec::new();
        let mut claim_cand: Vec<u32> = Vec::new();

        for cell in view.cells() {
            let claims = view.cell_claims(cell);
            group_candidates(claims, &mut cands, &mut claim_cand);
            let values: Vec<ValueId> = cands.iter().map(|c| c.value).collect();
            let counts: Vec<u32> = cands.iter().map(|c| c.count).collect();
            let claim_sources: Vec<SourceId> = claims.iter().map(|c| c.source).collect();
            for s in &claim_sources {
                claims_per_source[s.index()] += 1;
            }
            let sim = match similarity {
                Some(vs) => {
                    let k = values.len();
                    let mut m = vec![0.0; k * k];
                    for i in 0..k {
                        m[i * k + i] = 1.0;
                        for j in (i + 1)..k {
                            let s = vs.sim(view.value(values[i]), view.value(values[j]));
                            m[i * k + j] = s;
                            m[j * k + i] = s;
                        }
                    }
                    m
                }
                None => Vec::new(),
            };
            cells.push(CellData {
                object: cell.object,
                attribute: cell.attribute,
                values,
                counts,
                claim_sources,
                claim_cand: claim_cand.clone(),
                sim,
            });
        }

        Self {
            cells,
            n_sources,
            claims_per_source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{AttributeId, ObjectId, SourceId};

    fn claim(s: u32, v: u32) -> Claim {
        Claim::new(
            SourceId::new(s),
            ObjectId::new(0),
            AttributeId::new(0),
            ValueId::new(v),
        )
    }

    #[test]
    fn grouping_counts_supporters() {
        let claims = vec![claim(0, 5), claim(1, 7), claim(2, 5), claim(3, 5)];
        let mut cands = Vec::new();
        let mut map = Vec::new();
        group_candidates(&claims, &mut cands, &mut map);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].value, ValueId::new(5));
        assert_eq!(cands[0].count, 3);
        assert_eq!(cands[1].value, ValueId::new(7));
        assert_eq!(cands[1].count, 1);
        assert_eq!(map, vec![0, 1, 0, 0]);
    }

    #[test]
    fn grouping_reuses_buffers() {
        let mut cands = vec![Candidate {
            value: ValueId::new(9),
            count: 99,
            score: 1.0,
        }];
        let mut map = vec![42];
        group_candidates(&[claim(0, 1)], &mut cands, &mut map);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].count, 1);
        assert_eq!(cands[0].score, 0.0);
        assert_eq!(map, vec![0]);
    }

    #[test]
    fn argmax_prefers_score_then_small_id() {
        let mut cands = vec![
            Candidate {
                value: ValueId::new(3),
                count: 1,
                score: 0.5,
            },
            Candidate {
                value: ValueId::new(1),
                count: 1,
                score: 0.5,
            },
            Candidate {
                value: ValueId::new(2),
                count: 1,
                score: 0.4,
            },
        ];
        assert_eq!(argmax_candidate(&cands), Some(1), "tie toward smaller id");
        cands[2].score = 0.9;
        assert_eq!(argmax_candidate(&cands), Some(2));
        assert_eq!(argmax_candidate(&[]), None);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let mut cands = vec![
            Candidate {
                value: ValueId::new(0),
                count: 1,
                score: 1000.0,
            },
            Candidate {
                value: ValueId::new(1),
                count: 1,
                score: 998.0,
            },
        ];
        softmax_scores(&mut cands);
        let sum: f64 = cands.iter().map(|c| c.score).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(cands[0].score > cands[1].score);
        assert!(cands.iter().all(|c| c.score.is_finite()));
    }

    #[test]
    fn softmax_handles_degenerate_inputs() {
        let mut empty: Vec<Candidate> = vec![];
        softmax_scores(&mut empty);
        let mut inf = vec![
            Candidate {
                value: ValueId::new(0),
                count: 1,
                score: f64::NEG_INFINITY,
            },
            Candidate {
                value: ValueId::new(1),
                count: 1,
                score: f64::NEG_INFINITY,
            },
        ];
        softmax_scores(&mut inf);
        assert!((inf[0].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_behaviour() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0], &[0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn clamp_unit_bounds() {
        assert_eq!(clamp_unit(1.5, 1e-6), 1.0 - 1e-6);
        assert_eq!(clamp_unit(-0.2, 1e-6), 1e-6);
        assert_eq!(clamp_unit(0.5, 1e-6), 0.5);
    }

    #[test]
    fn workspace_mirrors_view_structure() {
        use td_model::{DatasetBuilder, Value, ValueSimilarity};
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::text("x")).unwrap();
        b.claim("s2", "o", "a", Value::text("x")).unwrap();
        b.claim("s3", "o", "a", Value::text("y")).unwrap();
        b.claim("s1", "o", "b", Value::int(1)).unwrap();
        let d = b.build();
        let ws = Workspace::build(&d.view_all(), None);
        assert_eq!(ws.cells.len(), 2);
        assert_eq!(ws.n_sources, 3);
        let cell_a = ws
            .cells
            .iter()
            .find(|c| c.attribute == d.attribute_id("a").unwrap())
            .unwrap();
        assert_eq!(cell_a.k(), 2);
        assert_eq!(cell_a.counts, vec![2, 1]);
        assert_eq!(cell_a.claim_sources.len(), 3);
        assert!(cell_a.sim.is_empty());
        let s1 = d.source_id("s1").unwrap();
        assert_eq!(ws.claims_per_source[s1.index()], 2);

        let ws_sim = Workspace::build(&d.view_all(), Some(&ValueSimilarity::default()));
        let cell_a = ws_sim
            .cells
            .iter()
            .find(|c| c.attribute == d.attribute_id("a").unwrap())
            .unwrap();
        assert_eq!(cell_a.sim.len(), 4);
        assert_eq!(cell_a.sim(0, 0), 1.0);
        assert_eq!(cell_a.sim(0, 1), cell_a.sim(1, 0));
    }
}
