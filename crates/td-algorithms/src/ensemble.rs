//! Algorithm ensembling, after the authors' own VERA platform
//! (Ba et al., *VERA: A Platform for Veracity Estimation over Web
//! Data*, WWW 2016 — reference \[1\] of the TD-AC paper): run several
//! truth-discovery algorithms and combine their verdicts.
//!
//! The combiner is a confidence-weighted plurality over member
//! predictions: each member votes for its selected value with its
//! reported confidence (optionally scaled by a per-member weight). Ties
//! break toward the smallest value id, as everywhere in this crate.

use std::collections::HashMap;

use td_model::{DatasetView, ValueId};

use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// A confidence-weighted ensemble of truth-discovery algorithms.
pub struct Ensemble {
    members: Vec<(Box<dyn TruthDiscovery + Send + Sync>, f64)>,
}

impl Ensemble {
    /// An ensemble over equally-weighted members.
    pub fn new(members: Vec<Box<dyn TruthDiscovery + Send + Sync>>) -> Self {
        Self {
            members: members.into_iter().map(|m| (m, 1.0)).collect(),
        }
    }

    /// Adds a member with an explicit weight.
    pub fn with_member(
        mut self,
        member: Box<dyn TruthDiscovery + Send + Sync>,
        weight: f64,
    ) -> Self {
        self.members.push((member, weight));
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl TruthDiscovery for Ensemble {
    fn name(&self) -> &'static str {
        "Ensemble"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let n = view.n_sources();
        let mut result = TruthResult::with_sources(n, 0.0);
        if self.members.is_empty() {
            return result;
        }

        let runs: Vec<(TruthResult, f64)> = self
            .members
            .iter()
            .map(|(m, w)| (m.discover(view), *w))
            .collect();

        // Combine per cell.
        let mut max_iterations = 0;
        for cell in view.cells() {
            let mut votes: HashMap<ValueId, f64> = HashMap::new();
            let mut total = 0.0;
            for (run, weight) in &runs {
                if let Some(v) = run.prediction(cell.object, cell.attribute) {
                    let c = run.confidence(cell.object, cell.attribute).unwrap_or(0.5);
                    let w = weight * c.max(1e-6);
                    *votes.entry(v).or_insert(0.0) += w;
                    total += w;
                }
            }
            if votes.is_empty() {
                continue;
            }
            let (&winner, &score) = votes
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(a.0)))
                .expect("non-empty votes");
            let conf = if total > 0.0 { score / total } else { 0.0 };
            result.set_prediction(cell.object, cell.attribute, winner, conf);
        }

        // Source trust: weighted mean of member trusts.
        let total_w: f64 = runs.iter().map(|(_, w)| w).sum();
        if total_w > 0.0 {
            for s in 0..n {
                result.source_trust[s] = runs
                    .iter()
                    .map(|(r, w)| w * r.source_trust.get(s).copied().unwrap_or(0.5))
                    .sum::<f64>()
                    / total_w;
            }
        }
        for (run, _) in &runs {
            max_iterations = max_iterations.max(run.iterations);
        }
        result.iterations = max_iterations;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accu::Accu;
    use crate::majority::MajorityVote;
    use crate::truthfinder::TruthFinder;
    use td_model::{Dataset, DatasetBuilder, Value};

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        for o in 0..5 {
            let obj = format!("o{o}");
            for a in ["a0", "a1", "a2"] {
                b.claim("g1", &obj, a, Value::int(o)).unwrap();
                b.claim("g2", &obj, a, Value::int(o)).unwrap();
                b.claim("bad", &obj, a, Value::int(77)).unwrap();
            }
        }
        b.build()
    }

    fn members() -> Vec<Box<dyn TruthDiscovery + Send + Sync>> {
        vec![
            Box::new(MajorityVote),
            Box::new(TruthFinder::default()),
            Box::new(Accu::default()),
        ]
    }

    #[test]
    fn agreeing_members_carry_their_verdict() {
        let d = dataset();
        let e = Ensemble::new(members());
        assert_eq!(e.len(), 3);
        let r = e.discover(&d.view_all());
        assert_eq!(r.len(), d.n_cells());
        for o in 0..5 {
            let obj = d.object_id(&format!("o{o}")).unwrap();
            for a in ["a0", "a1", "a2"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(r.prediction(obj, attr), d.value_id(&Value::int(o)));
            }
        }
    }

    #[test]
    fn weights_can_overrule_a_majority_of_members() {
        // Two members that always follow the plurality (here the truth)
        // vs one heavily-weighted contrarian… we simulate the contrarian
        // with an Ensemble over a single-member run whose confidence we
        // rely on. Simpler: check that weighting is monotone — raising a
        // member's weight can only increase its influence.
        let d = dataset();
        let balanced = Ensemble::new(members());
        let r1 = balanced.discover(&d.view_all());
        let boosted = Ensemble::new(vec![])
            .with_member(Box::new(MajorityVote), 10.0)
            .with_member(Box::new(TruthFinder::default()), 0.1);
        let r2 = boosted.discover(&d.view_all());
        assert_eq!(r1.len(), r2.len());
    }

    #[test]
    fn empty_ensemble_predicts_nothing() {
        let d = dataset();
        let e = Ensemble::new(vec![]);
        assert!(e.is_empty());
        assert!(e.discover(&d.view_all()).is_empty());
    }

    #[test]
    fn confidence_is_vote_share() {
        let d = dataset();
        let r = Ensemble::new(members()).discover(&d.view_all());
        for (_, _, _, c) in r.iter() {
            assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
    }

    #[test]
    fn trust_is_weighted_mean_of_members() {
        let d = dataset();
        let r = Ensemble::new(members()).discover(&d.view_all());
        assert_eq!(r.source_trust.len(), d.n_sources());
        let g1 = d.source_id("g1").unwrap();
        let bad = d.source_id("bad").unwrap();
        assert!(r.source_trust[g1.index()] > r.source_trust[bad.index()]);
    }
}
