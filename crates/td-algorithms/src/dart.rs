//! DART-style domain-aware truth discovery (after Lin & Chen, *Domain-
//! aware Multi-truth Discovery from Conflicting Sources*, VLDB 2018 —
//! reference \[10\] of the TD-AC paper), adapted to the one-truth setting.
//!
//! DART's premise is the same structural observation TD-AC automates:
//! source reliability varies per *domain*. The difference is that DART
//! is **told** the domain of every attribute up front, and estimates one
//! expertise score per `(source, domain)` pair instead of one global
//! trust. That makes it the natural *informed baseline* for TD-AC: if
//! TD-AC's discovered clusters are as good as hand-labeled domains,
//! their accuracies should match — which is exactly what the extended
//! experiment checks.
//!
//! The iterative core mirrors Accu's Bayesian voting with domain-local
//! accuracy: a claim's vote weight is `ln(n · A_d(s) / (1 - A_d(s)))`
//! where `A_d(s)` is the source's accuracy *in the claim's domain*, and
//! domain accuracies are re-estimated from the posterior per domain.

use std::collections::HashMap;

use td_model::{AttributeId, DatasetView};

use crate::common::{clamp_unit, max_abs_diff, Workspace};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Hyper-parameters of [`Dart`].
#[derive(Debug, Clone, Copy)]
pub struct DartConfig {
    /// Initial per-(source, domain) expertise.
    pub initial_expertise: f64,
    /// Assumed number of false values per cell (as in Accu).
    pub n_false: f64,
    /// Convergence threshold on the max expertise change.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
}

impl Default for DartConfig {
    fn default() -> Self {
        Self {
            initial_expertise: 0.8,
            n_false: 100.0,
            tolerance: 1e-4,
            max_iterations: 30,
        }
    }
}

/// Domain-aware truth discovery with a known attribute→domain map.
///
/// Attributes absent from the map share one implicit "general" domain.
#[derive(Debug, Clone, Default)]
pub struct Dart {
    /// Hyper-parameters.
    pub config: DartConfig,
    /// Attribute → domain index. Build with [`Dart::with_domains`].
    domain_of: HashMap<AttributeId, usize>,
    n_domains: usize,
}

impl Dart {
    /// DART with the given domain assignment: `groups[d]` lists the
    /// attributes of domain `d`.
    pub fn with_domains(groups: &[Vec<AttributeId>]) -> Self {
        let mut domain_of = HashMap::new();
        for (d, group) in groups.iter().enumerate() {
            for &a in group {
                domain_of.insert(a, d + 1); // 0 is the implicit general domain
            }
        }
        Self {
            config: DartConfig::default(),
            domain_of,
            n_domains: groups.len() + 1,
        }
    }

    /// Overrides the hyper-parameters.
    pub fn with_config(mut self, config: DartConfig) -> Self {
        self.config = config;
        self
    }

    #[inline]
    fn domain(&self, a: AttributeId) -> usize {
        self.domain_of.get(&a).copied().unwrap_or(0)
    }
}

impl TruthDiscovery for Dart {
    fn name(&self) -> &'static str {
        "DART"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let ws = Workspace::build(view, None);
        let n = ws.n_sources;
        let n_domains = self.n_domains.max(1);
        let cfg = &self.config;
        const EPS: f64 = 1e-6;

        let mut result = TruthResult::with_sources(n, cfg.initial_expertise);
        // expertise[s * n_domains + d]
        let mut expertise = vec![cfg.initial_expertise; n * n_domains];
        let mut scores: Vec<f64> = Vec::new();
        let mut pred = vec![0usize; ws.cells.len()];
        let mut confidence = vec![0.0f64; ws.cells.len()];

        let mut iterations = 0u32;
        loop {
            iterations += 1;

            // Per-(source, domain) posterior accumulators.
            let mut sums = vec![0.0f64; n * n_domains];
            let mut counts = vec![0u32; n * n_domains];

            for (ci, cell) in ws.cells.iter().enumerate() {
                let d = self.domain(cell.attribute);
                let k = cell.k();
                scores.clear();
                scores.resize(k, 0.0);
                for (ic, &src) in cell.claim_sources.iter().enumerate() {
                    let a = clamp_unit(expertise[src.index() * n_domains + d], EPS);
                    let tau = (cfg.n_false * a / (1.0 - a)).ln();
                    scores[cell.claim_cand[ic] as usize] += tau;
                }
                // Softmax to a posterior.
                let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                for s in scores.iter_mut() {
                    *s = (*s - max).exp();
                    z += *s;
                }
                let mut best = 0usize;
                for i in 0..k {
                    scores[i] /= z;
                    if scores[i] > scores[best]
                        || (scores[i] == scores[best] && cell.values[i] < cell.values[best])
                    {
                        best = i;
                    }
                }
                pred[ci] = best;
                confidence[ci] = scores[best];
                for (ic, &src) in cell.claim_sources.iter().enumerate() {
                    let slot = src.index() * n_domains + d;
                    sums[slot] += scores[cell.claim_cand[ic] as usize];
                    counts[slot] += 1;
                }
            }

            let mut new_expertise = expertise.clone();
            for slot in 0..n * n_domains {
                if counts[slot] > 0 {
                    new_expertise[slot] = clamp_unit(sums[slot] / counts[slot] as f64, EPS);
                }
            }
            let delta = max_abs_diff(&expertise, &new_expertise);
            expertise = new_expertise;
            if delta < cfg.tolerance || iterations >= cfg.max_iterations {
                break;
            }
        }

        for (ci, cell) in ws.cells.iter().enumerate() {
            result.set_prediction(
                cell.object,
                cell.attribute,
                cell.values[pred[ci]],
                confidence[ci],
            );
        }
        // Report each source's mean expertise across domains it acted in.
        for s in 0..n {
            let row = &expertise[s * n_domains..(s + 1) * n_domains];
            result.source_trust[s] = row.iter().sum::<f64>() / n_domains as f64;
        }
        result.iterations = iterations;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{Dataset, DatasetBuilder, Value};

    /// Sources with opposite reliability across two domains. In domain B
    /// the wrong camp outnumbers the right one (3 vs 2) but *splits*
    /// between two lies, so domain-local evidence identifies the truth —
    /// while global trust estimation is contaminated by the sources'
    /// mixed cross-domain records.
    fn two_domain_dataset() -> (Dataset, Vec<Vec<AttributeId>>) {
        let mut b = DatasetBuilder::new();
        for o in 0..8 {
            let obj = format!("o{o}");
            // Domain A (a0, a1): g* right, h* wrong-unified.
            for a in ["a0", "a1"] {
                for s in ["g1", "g2", "g3"] {
                    b.claim(s, &obj, a, Value::int(o)).unwrap();
                }
                for s in ["h1", "h2"] {
                    b.claim(s, &obj, a, Value::int(900 + o)).unwrap();
                }
            }
            // Domain B (b0, b1): h* right, g-camp wrong but split.
            for a in ["b0", "b1"] {
                for s in ["g1", "g2"] {
                    b.claim(s, &obj, a, Value::int(800 + o)).unwrap();
                }
                b.claim("g3", &obj, a, Value::int(850 + o)).unwrap();
                for s in ["h1", "h2"] {
                    b.claim(s, &obj, a, Value::int(o)).unwrap();
                }
            }
        }
        let d = b.build();
        let dom_a = vec![d.attribute_id("a0").unwrap(), d.attribute_id("a1").unwrap()];
        let dom_b = vec![d.attribute_id("b0").unwrap(), d.attribute_id("b1").unwrap()];
        (d, vec![dom_a, dom_b])
    }

    #[test]
    fn domain_expertise_separates_specialists() {
        let (d, domains) = two_domain_dataset();
        let dart = Dart::with_domains(&domains);
        let r = dart.discover(&d.view_all());
        // Domain A cells go to the g-camp's values, domain B to h-camp's.
        for o in 0..8 {
            let obj = d.object_id(&format!("o{o}")).unwrap();
            for a in ["a0", "a1"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(
                    r.prediction(obj, attr),
                    d.value_id(&Value::int(o)),
                    "domain A cell ({o}, {a})"
                );
            }
            for a in ["b0", "b1"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(
                    r.prediction(obj, attr),
                    d.value_id(&Value::int(o)),
                    "domain B cell ({o}, {a})"
                );
            }
        }
    }

    #[test]
    fn unmapped_attributes_share_the_general_domain() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "x", Value::int(1)).unwrap();
        b.claim("s2", "o", "x", Value::int(1)).unwrap();
        b.claim("s3", "o", "x", Value::int(2)).unwrap();
        let d = b.build();
        // No domain map at all.
        let r = Dart::default().discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let x = d.attribute_id("x").unwrap();
        assert_eq!(r.prediction(o, x), d.value_id(&Value::int(1)));
    }

    #[test]
    fn deterministic_and_bounded() {
        let (d, domains) = two_domain_dataset();
        let dart = Dart::with_domains(&domains);
        let r1 = dart.discover(&d.view_all());
        let r2 = dart.discover(&d.view_all());
        assert_eq!(r1.source_trust, r2.source_trust);
        assert!(r1.iterations <= DartConfig::default().max_iterations);
        for &t in &r1.source_trust {
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn empty_view_ok() {
        let d = DatasetBuilder::new().build();
        assert!(Dart::default().discover(&d.view_all()).is_empty());
    }
}
