#![warn(missing_docs)]
// Numeric kernels index several parallel arrays in lockstep; iterator
// rewrites obscure them without gain.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::vec_init_then_push)]

//! # td-algorithms — the standard truth-discovery algorithm family
//!
//! From-scratch Rust implementations of every *base* and *baseline*
//! algorithm the TD-AC paper uses (§4.1), plus the extended set its
//! conclusion names as future comparison targets:
//!
//! | Algorithm | Paper | Module |
//! |---|---|---|
//! | MajorityVote | folklore | [`majority`] |
//! | TruthFinder | Yin, Han & Yu, TKDE 2008 | [`truthfinder`] |
//! | Depen / Accu / AccuSim | Dong, Berti-Équille & Srivastava, VLDB 2009 | [`accu`] |
//! | Sums, AverageLog, Investment, PooledInvestment | Pasternack & Roth, COLING 2010 | [`fixpoint`] |
//! | 2-Estimates, 3-Estimates | Galland et al., WSDM 2010 | [`estimates`] |
//! | CRH | Li et al., SIGMOD 2014 | [`crh`] |
//! | DART (domain-aware, one-truth adaptation) | Lin & Chen, VLDB 2018 | [`dart`] |
//! | Ensemble (VERA-style combiner) | Ba et al., WWW 2016 | [`ensemble`] |
//!
//! Every algorithm implements the [`TruthDiscovery`] trait over a
//! [`td_model::DatasetView`], which is what lets TD-AC (crate
//! `tdac-core`) run *any* of them per attribute cluster — the
//! composability requirement at the heart of the paper.
//!
//! All algorithms are deterministic: ties break toward the smallest
//! interned [`td_model::ValueId`], iteration orders are fixed by the
//! dataset's sorted claim layout, and no randomness is used anywhere.
//!
//! ```
//! use td_model::{DatasetBuilder, Value};
//! use td_algorithms::{MajorityVote, TruthDiscovery};
//!
//! let mut b = DatasetBuilder::new();
//! b.claim("s1", "match", "winner", Value::text("Algeria")).unwrap();
//! b.claim("s2", "match", "winner", Value::text("Senegal")).unwrap();
//! b.claim("s3", "match", "winner", Value::text("Algeria")).unwrap();
//! let d = b.build();
//!
//! let result = MajorityVote::default().discover(&d.view_all());
//! let o = d.object_id("match").unwrap();
//! let a = d.attribute_id("winner").unwrap();
//! let winner = result.prediction(o, a).unwrap();
//! assert_eq!(d.value(winner), &Value::text("Algeria"));
//! ```

pub mod accu;
pub mod common;
pub mod crh;
pub mod dart;
pub mod ensemble;
pub mod estimates;
pub mod fixpoint;
pub mod majority;
pub mod registry;
pub mod result;
pub mod traits;
pub mod truthfinder;

pub use accu::{Accu, AccuConfig, AccuSim, Depen};
pub use crh::{Crh, CrhConfig};
pub use dart::{Dart, DartConfig};
pub use ensemble::Ensemble;
pub use estimates::{ThreeEstimates, TwoEstimates};
pub use fixpoint::{AverageLog, Investment, PooledInvestment, Sums};
pub use majority::MajorityVote;
pub use registry::{algorithm_by_name, standard_algorithms};
pub use result::TruthResult;
pub use traits::TruthDiscovery;
pub use truthfinder::{TruthFinder, TruthFinderConfig};
