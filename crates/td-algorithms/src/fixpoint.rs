//! The Pasternack–Roth fixpoint family (*Knowing What to Believe*,
//! COLING 2010): **Sums**, **AverageLog**, **Investment** and
//! **PooledInvestment**.
//!
//! All four alternate between claim *belief* `B(v)` and source *trust*
//! `T(s)` until a fixed point, differing only in the update rules:
//!
//! * **Sums** — Hubs & Authorities transplanted to claims:
//!   `B(v) = Σ_{s∈S_v} T(s)`, `T(s) = Σ_{v∈V_s} B(v)`.
//! * **AverageLog** — dampens prolific sources:
//!   `T(s) = ln(1 + |V_s|) · avg_{v∈V_s} B(v)`
//!   (we use `ln(1+·)` rather than `ln(·)` so single-claim sources keep
//!   non-zero trust; the original's `ln|V_s|` degenerates there).
//! * **Investment** — sources invest trust evenly across their claims and
//!   collect returns proportional to their share, with super-linear claim
//!   growth `G(x) = x^{1.2}`.
//! * **PooledInvestment** — like Investment but belief growth is
//!   normalized *within each cell* with `G(x) = x^{1.4}`.
//!
//! Trust and belief vectors are max-normalized every round (the paper's
//! own guard against overflow) and iteration stops when the trust vector
//! stabilizes or after `max_iterations` (paper: 20).

use td_model::DatasetView;

use crate::common::{max_abs_diff, Workspace};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Which member of the family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Sums,
    AverageLog,
    Investment,
    PooledInvestment,
}

/// Shared hyper-parameters of the fixpoint family.
#[derive(Debug, Clone, Copy)]
pub struct FixpointConfig {
    /// Initial uniform source trust.
    pub initial_trust: f64,
    /// Growth exponent for Investment (paper: 1.2).
    pub investment_growth: f64,
    /// Growth exponent for PooledInvestment (paper: 1.4).
    pub pooled_growth: f64,
    /// Convergence threshold on the max-normalized trust change.
    pub tolerance: f64,
    /// Hard iteration cap (paper: 20).
    pub max_iterations: u32,
}

impl Default for FixpointConfig {
    fn default() -> Self {
        Self {
            initial_trust: 1.0,
            investment_growth: 1.2,
            pooled_growth: 1.4,
            tolerance: 1e-6,
            max_iterations: 20,
        }
    }
}

macro_rules! family_member {
    ($(#[$doc:meta])* $name:ident, $variant:expr, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name {
            /// Family hyper-parameters.
            pub config: FixpointConfig,
        }

        impl $name {
            /// Constructor with custom hyper-parameters.
            pub fn new(config: FixpointConfig) -> Self {
                Self { config }
            }
        }

        impl TruthDiscovery for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
                run(view, &self.config, $variant)
            }
        }
    };
}

family_member!(
    /// Sums (Hubs & Authorities on the claim graph).
    Sums,
    Variant::Sums,
    "Sums"
);
family_member!(
    /// AverageLog — Sums dampened by a log of the claim count.
    AverageLog,
    Variant::AverageLog,
    "AverageLog"
);
family_member!(
    /// Investment — trust invested across claims with super-linear returns.
    Investment,
    Variant::Investment,
    "Investment"
);
family_member!(
    /// PooledInvestment — Investment with per-cell belief pooling.
    PooledInvestment,
    Variant::PooledInvestment,
    "PooledInvestment"
);

fn run(view: &DatasetView<'_>, cfg: &FixpointConfig, variant: Variant) -> TruthResult {
    let ws = Workspace::build(view, None);
    let n = ws.n_sources;
    let mut trust = vec![cfg.initial_trust; n];
    let mut result = TruthResult::with_sources(n, cfg.initial_trust);

    // Belief per (cell, candidate), flattened.
    let offsets: Vec<usize> = {
        let mut o = Vec::with_capacity(ws.cells.len() + 1);
        let mut acc = 0usize;
        o.push(0);
        for c in &ws.cells {
            acc += c.k();
            o.push(acc);
        }
        o
    };
    let total_cands = *offsets.last().unwrap_or(&0);
    let mut belief = vec![0.0f64; total_cands];
    let mut new_trust = vec![0.0f64; n];

    let mut iterations = 0u32;
    loop {
        iterations += 1;

        // ---- belief update -------------------------------------------
        for b in belief.iter_mut() {
            *b = 0.0;
        }
        match variant {
            Variant::Sums | Variant::AverageLog => {
                for (ci, cell) in ws.cells.iter().enumerate() {
                    let base = offsets[ci];
                    for (ic, &src) in cell.claim_sources.iter().enumerate() {
                        belief[base + cell.claim_cand[ic] as usize] += trust[src.index()];
                    }
                }
            }
            Variant::Investment | Variant::PooledInvestment => {
                for (ci, cell) in ws.cells.iter().enumerate() {
                    let base = offsets[ci];
                    for (ic, &src) in cell.claim_sources.iter().enumerate() {
                        let s = src.index();
                        let stake = trust[s] / ws.claims_per_source[s].max(1) as f64;
                        belief[base + cell.claim_cand[ic] as usize] += stake;
                    }
                }
                if variant == Variant::Investment {
                    let g = cfg.investment_growth;
                    for b in belief.iter_mut() {
                        *b = b.powf(g);
                    }
                } else {
                    // Pooled: belief mass within each cell is rescaled by
                    // the grown share.
                    let g = cfg.pooled_growth;
                    for (ci, cell) in ws.cells.iter().enumerate() {
                        let base = offsets[ci];
                        let k = cell.k();
                        let h_sum: f64 = belief[base..base + k].iter().sum();
                        let g_sum: f64 = belief[base..base + k].iter().map(|h| h.powf(g)).sum();
                        if g_sum > 0.0 {
                            for i in 0..k {
                                let h = belief[base + i];
                                belief[base + i] = h_sum * h.powf(g) / g_sum;
                            }
                        }
                    }
                }
            }
        }
        // Max-normalize beliefs (overflow guard shared by the family).
        let bmax = belief.iter().copied().fold(0.0f64, f64::max);
        if bmax > 0.0 {
            for b in belief.iter_mut() {
                *b /= bmax;
            }
        }

        // ---- trust update --------------------------------------------
        for t in new_trust.iter_mut() {
            *t = 0.0;
        }
        match variant {
            Variant::Sums | Variant::AverageLog => {
                for (ci, cell) in ws.cells.iter().enumerate() {
                    let base = offsets[ci];
                    for (ic, &src) in cell.claim_sources.iter().enumerate() {
                        new_trust[src.index()] += belief[base + cell.claim_cand[ic] as usize];
                    }
                }
                if variant == Variant::AverageLog {
                    for s in 0..n {
                        let m = ws.claims_per_source[s] as f64;
                        if m > 0.0 {
                            new_trust[s] = (1.0 + m).ln() * new_trust[s] / m;
                        }
                    }
                }
            }
            Variant::Investment | Variant::PooledInvestment => {
                // Return on each claim proportional to the stake share.
                // First: total stake per candidate (recomputed; cheap).
                let mut stake_tot = vec![0.0f64; total_cands];
                for (ci, cell) in ws.cells.iter().enumerate() {
                    let base = offsets[ci];
                    for (ic, &src) in cell.claim_sources.iter().enumerate() {
                        let s = src.index();
                        stake_tot[base + cell.claim_cand[ic] as usize] +=
                            trust[s] / ws.claims_per_source[s].max(1) as f64;
                    }
                }
                for (ci, cell) in ws.cells.iter().enumerate() {
                    let base = offsets[ci];
                    for (ic, &src) in cell.claim_sources.iter().enumerate() {
                        let s = src.index();
                        let stake = trust[s] / ws.claims_per_source[s].max(1) as f64;
                        let idx = base + cell.claim_cand[ic] as usize;
                        if stake_tot[idx] > 0.0 {
                            new_trust[s] += belief[idx] * stake / stake_tot[idx];
                        }
                    }
                }
            }
        }
        // Sources with no claims keep their old trust.
        for s in 0..n {
            if ws.claims_per_source[s] == 0 {
                new_trust[s] = trust[s];
            }
        }
        // Max-normalize trust.
        let tmax = new_trust.iter().copied().fold(0.0f64, f64::max);
        if tmax > 0.0 {
            for t in new_trust.iter_mut() {
                *t /= tmax;
            }
        }

        let delta = max_abs_diff(&trust, &new_trust);
        trust.copy_from_slice(&new_trust);
        if delta < cfg.tolerance || iterations >= cfg.max_iterations {
            break;
        }
    }

    // Predictions: per-cell argmax belief, confidence = belief share.
    for (ci, cell) in ws.cells.iter().enumerate() {
        let base = offsets[ci];
        let k = cell.k();
        if k == 0 {
            continue;
        }
        let mut best = 0usize;
        for i in 1..k {
            let (bi, bb) = (belief[base + i], belief[base + best]);
            if bi > bb || (bi == bb && cell.values[i] < cell.values[best]) {
                best = i;
            }
        }
        let sum: f64 = belief[base..base + k].iter().sum();
        let conf = if sum > 0.0 {
            belief[base + best] / sum
        } else {
            1.0 / k as f64
        };
        result.set_prediction(cell.object, cell.attribute, cell.values[best], conf);
    }
    result.source_trust = trust;
    result.iterations = iterations;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{Dataset, DatasetBuilder, Value};

    fn all_variants() -> Vec<Box<dyn TruthDiscovery>> {
        vec![
            Box::new(Sums::default()),
            Box::new(AverageLog::default()),
            Box::new(Investment::default()),
            Box::new(PooledInvestment::default()),
        ]
    }

    fn majority_world() -> Dataset {
        let mut b = DatasetBuilder::new();
        for i in 0..5 {
            let a = format!("a{i}");
            b.claim("s1", "o", &a, Value::int(i)).unwrap();
            b.claim("s2", "o", &a, Value::int(i)).unwrap();
            b.claim("s3", "o", &a, Value::int(i)).unwrap();
            b.claim("bad", "o", &a, Value::int(100 + i)).unwrap();
        }
        b.build()
    }

    #[test]
    fn all_variants_follow_clear_majority() {
        let d = majority_world();
        let o = d.object_id("o").unwrap();
        for algo in all_variants() {
            let r = algo.discover(&d.view_all());
            for i in 0..5 {
                let a = d.attribute_id(&format!("a{i}")).unwrap();
                assert_eq!(
                    r.prediction(o, a),
                    Some(d.value_id(&Value::int(i)).unwrap()),
                    "{} failed on a{i}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn trust_separates_good_from_bad() {
        let d = majority_world();
        let s1 = d.source_id("s1").unwrap();
        let bad = d.source_id("bad").unwrap();
        for algo in all_variants() {
            let r = algo.discover(&d.view_all());
            assert!(
                r.source_trust[s1.index()] > r.source_trust[bad.index()],
                "{}: {:?}",
                algo.name(),
                r.source_trust
            );
        }
    }

    #[test]
    fn trust_is_normalized_to_unit_max() {
        let d = majority_world();
        for algo in all_variants() {
            let r = algo.discover(&d.view_all());
            let max = r.source_trust.iter().copied().fold(0.0f64, f64::max);
            assert!((max - 1.0).abs() < 1e-9, "{}", algo.name());
            assert!(r.source_trust.iter().all(|&t| (0.0..=1.0 + 1e-9).contains(&t)));
        }
    }

    #[test]
    fn iterations_within_cap() {
        let d = majority_world();
        for algo in all_variants() {
            let r = algo.discover(&d.view_all());
            assert!(
                (1..=FixpointConfig::default().max_iterations).contains(&r.iterations),
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn deterministic() {
        let d = majority_world();
        for algo in all_variants() {
            let r1 = algo.discover(&d.view_all());
            let r2 = algo.discover(&d.view_all());
            assert_eq!(r1.source_trust, r2.source_trust, "{}", algo.name());
        }
    }

    #[test]
    fn confidences_are_cell_shares() {
        let d = majority_world();
        for algo in all_variants() {
            let r = algo.discover(&d.view_all());
            for (_, _, _, c) in r.iter() {
                assert!((0.0..=1.0).contains(&c), "{}: {c}", algo.name());
            }
        }
    }

    #[test]
    fn investment_growth_rewards_concentration() {
        // Two equally-voted values; the Investment family's growth should
        // still produce a deterministic winner via tie-break, and never
        // panic on the pow of zero.
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(1)).unwrap();
        b.claim("s2", "o", "a", Value::int(2)).unwrap();
        let d = b.build();
        for algo in all_variants() {
            let r = algo.discover(&d.view_all());
            assert_eq!(r.len(), 1, "{}", algo.name());
        }
    }

    #[test]
    fn empty_view_ok() {
        let d = DatasetBuilder::new().build();
        for algo in all_variants() {
            assert!(algo.discover(&d.view_all()).is_empty(), "{}", algo.name());
        }
    }
}
