//! Name-based algorithm lookup for CLIs and experiment configs.

use crate::accu::{Accu, AccuSim, Depen};
use crate::crh::Crh;
use crate::estimates::{ThreeEstimates, TwoEstimates};
use crate::fixpoint::{AverageLog, Investment, PooledInvestment, Sums};
use crate::majority::MajorityVote;
use crate::traits::TruthDiscovery;
use crate::truthfinder::TruthFinder;

/// Instantiates an algorithm (with default hyper-parameters) from its
/// paper-style name. Matching is case-insensitive and tolerant of the
/// aliases seen in the literature (`"vote"`, `"2-estimates"`, …).
pub fn algorithm_by_name(name: &str) -> Option<Box<dyn TruthDiscovery + Send + Sync>> {
    let n = name.to_ascii_lowercase();
    Some(match n.as_str() {
        "majorityvote" | "majority" | "vote" | "mv" => Box::new(MajorityVote),
        "truthfinder" | "tf" => Box::new(TruthFinder::default()),
        "depen" | "dep" => Box::new(Depen::default()),
        "accu" | "accuracy" => Box::new(Accu::default()),
        "accusim" | "accu-sim" => Box::new(AccuSim::default()),
        "sums" | "hubs" => Box::new(Sums::default()),
        "averagelog" | "avglog" | "average-log" => Box::new(AverageLog::default()),
        "investment" | "invest" => Box::new(Investment::default()),
        "pooledinvestment" | "pooled" | "pooled-investment" => {
            Box::new(PooledInvestment::default())
        }
        "crh" | "conflict-resolution" => Box::new(Crh::default()),
        "2-estimates" | "twoestimates" | "2est" => Box::new(TwoEstimates::default()),
        "3-estimates" | "threeestimates" | "3est" => Box::new(ThreeEstimates::default()),
        _ => return None,
    })
}

/// The five standard algorithms the paper evaluates (§4.1), in its order.
pub fn standard_algorithms() -> Vec<Box<dyn TruthDiscovery + Send + Sync>> {
    vec![
        Box::new(MajorityVote),
        Box::new(TruthFinder::default()),
        Box::new(Depen::default()),
        Box::new(Accu::default()),
        Box::new(AccuSim::default()),
    ]
}

/// Every algorithm in this crate, standard five first.
pub fn all_algorithms() -> Vec<Box<dyn TruthDiscovery + Send + Sync>> {
    let mut v = standard_algorithms();
    v.push(Box::new(Sums::default()));
    v.push(Box::new(AverageLog::default()));
    v.push(Box::new(Investment::default()));
    v.push(Box::new(PooledInvestment::default()));
    v.push(Box::new(Crh::default()));
    v.push(Box::new(TwoEstimates::default()));
    v.push(Box::new(ThreeEstimates::default()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive_and_aliased() {
        assert_eq!(algorithm_by_name("TruthFinder").unwrap().name(), "TruthFinder");
        assert_eq!(algorithm_by_name("accu").unwrap().name(), "Accu");
        assert_eq!(algorithm_by_name("VOTE").unwrap().name(), "MajorityVote");
        assert_eq!(algorithm_by_name("2est").unwrap().name(), "2-Estimates");
        assert!(algorithm_by_name("nonsense").is_none());
    }

    #[test]
    fn standard_set_matches_paper_order() {
        let names: Vec<_> = standard_algorithms().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["MajorityVote", "TruthFinder", "DEPEN", "Accu", "AccuSim"]
        );
    }

    #[test]
    fn all_algorithms_have_unique_names() {
        let algos = all_algorithms();
        let mut names: Vec<_> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 12);
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate algorithm names");
    }

    #[test]
    fn every_registered_name_roundtrips() {
        for algo in all_algorithms() {
            let again = algorithm_by_name(algo.name())
                .unwrap_or_else(|| panic!("{} not resolvable by its own name", algo.name()));
            assert_eq!(again.name(), algo.name());
        }
    }
}
