//! The Galland et al. estimators (*Corroborating Information from
//! Disagreeing Views*, WSDM 2010): **2-Estimates** and **3-Estimates**.
//!
//! Both model each distinct `(cell, value)` pair as a boolean *fact*:
//! a source claiming `v` in a cell casts a **positive** vote on `v`'s fact
//! and an implicit **negative** vote on every other candidate of the same
//! cell (the one-truth assumption made operational).
//!
//! * **2-Estimates** alternates two estimates — fact truth `ρ(f)` and
//!   source trust `θ(s)`:
//!   `ρ(f) = avg_s (vote ? θ(s) : 1-θ(s))`,
//!   `θ(s) = avg_f (vote ? ρ(f) : 1-ρ(f))`,
//!   each followed by Galland's affine renormalization onto `[0, 1]`.
//! * **3-Estimates** adds a per-fact *difficulty* `ε(f)`, modelling the
//!   probability of error on fact `f` as `err(s) · ε(f)`; easy facts
//!   barely move trust while hard ones dominate it.
//!
//! Iteration stops when the trust vector stabilizes or at the cap
//! (paper: 20 rounds).

use td_model::DatasetView;

use crate::common::{max_abs_diff, Workspace};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Hyper-parameters for [`TwoEstimates`] and [`ThreeEstimates`].
#[derive(Debug, Clone, Copy)]
pub struct EstimatesConfig {
    /// Initial source trust (2-Estimates) / complement of the initial
    /// error factor (3-Estimates).
    pub initial_trust: f64,
    /// Initial fact difficulty for 3-Estimates.
    pub initial_difficulty: f64,
    /// Convergence threshold on the max trust change.
    pub tolerance: f64,
    /// Hard iteration cap (paper: 20).
    pub max_iterations: u32,
    /// Whether to apply Galland's affine `[0,1]` renormalization after
    /// each estimate (the paper's λ = full normalization).
    pub normalize: bool,
}

impl Default for EstimatesConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.8,
            initial_difficulty: 0.5,
            tolerance: 1e-6,
            max_iterations: 20,
            normalize: true,
        }
    }
}

/// 2-Estimates. See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoEstimates {
    /// Hyper-parameters.
    pub config: EstimatesConfig,
}

/// 3-Estimates. See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeEstimates {
    /// Hyper-parameters.
    pub config: EstimatesConfig,
}

impl TwoEstimates {
    /// Constructor with custom hyper-parameters.
    pub fn new(config: EstimatesConfig) -> Self {
        Self { config }
    }
}

impl ThreeEstimates {
    /// Constructor with custom hyper-parameters.
    pub fn new(config: EstimatesConfig) -> Self {
        Self { config }
    }
}

impl TruthDiscovery for TwoEstimates {
    fn name(&self) -> &'static str {
        "2-Estimates"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        run(view, &self.config, false)
    }
}

impl TruthDiscovery for ThreeEstimates {
    fn name(&self) -> &'static str {
        "3-Estimates"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        run(view, &self.config, true)
    }
}

/// Affine renormalization of a vector onto `[0, 1]`; identity when the
/// vector is constant (nothing to spread).
fn renormalize(xs: &mut [f64]) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs.iter() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if !(hi - lo).is_normal() {
        return;
    }
    for x in xs.iter_mut() {
        *x = (*x - lo) / (hi - lo);
    }
}

fn run(view: &DatasetView<'_>, cfg: &EstimatesConfig, third: bool) -> TruthResult {
    let ws = Workspace::build(view, None);
    let n = ws.n_sources;
    let mut result = TruthResult::with_sources(n, cfg.initial_trust);

    // Fact layout: per cell, one fact per candidate.
    let offsets: Vec<usize> = {
        let mut o = Vec::with_capacity(ws.cells.len() + 1);
        let mut acc = 0;
        o.push(0);
        for c in &ws.cells {
            acc += c.k();
            o.push(acc);
        }
        o
    };
    let n_facts = *offsets.last().unwrap_or(&0);

    let mut trust = vec![cfg.initial_trust; n];
    let mut rho = vec![0.5f64; n_facts]; // fact truth
    let mut eps = vec![cfg.initial_difficulty; n_facts]; // 3-Est difficulty
    let mut votes_per_source = vec![0u64; n];
    for cell in &ws.cells {
        for src in &cell.claim_sources {
            // each claim votes on every candidate of the cell
            votes_per_source[src.index()] += cell.k() as u64;
        }
    }

    let clamp = |x: f64| x.clamp(1e-6, 1.0 - 1e-6);
    let mut iterations = 0u32;
    loop {
        iterations += 1;

        // ---- fact truth ρ(f) ------------------------------------------
        let mut num = vec![0.0f64; n_facts];
        let mut den = vec![0u64; n_facts];
        for (ci, cell) in ws.cells.iter().enumerate() {
            let base = offsets[ci];
            for (ic, &src) in cell.claim_sources.iter().enumerate() {
                let s = src.index();
                let t = clamp(trust[s]);
                let claimed = cell.claim_cand[ic] as usize;
                for f in 0..cell.k() {
                    let positive = f == claimed;
                    let contribution = if third {
                        // P(f true | vote) with error = (1-t)·ε(f)
                        let err = clamp((1.0 - t) * eps[base + f]);
                        if positive {
                            1.0 - err
                        } else {
                            err
                        }
                    } else if positive {
                        t
                    } else {
                        1.0 - t
                    };
                    num[base + f] += contribution;
                    den[base + f] += 1;
                }
            }
        }
        for f in 0..n_facts {
            if den[f] > 0 {
                rho[f] = num[f] / den[f] as f64;
            }
        }
        if cfg.normalize {
            renormalize(&mut rho);
        }

        // ---- fact difficulty ε(f) (3-Estimates only) -------------------
        if third {
            let mut enum_ = vec![0.0f64; n_facts];
            let mut eden = vec![0u64; n_facts];
            for (ci, cell) in ws.cells.iter().enumerate() {
                let base = offsets[ci];
                for (ic, &src) in cell.claim_sources.iter().enumerate() {
                    let s = src.index();
                    let err_s = clamp(1.0 - trust[s]);
                    let claimed = cell.claim_cand[ic] as usize;
                    for f in 0..cell.k() {
                        let positive = f == claimed;
                        // err(s)·ε(f) ≈ P(vote wrong); wrongness of this
                        // vote given current ρ:
                        let wrong = if positive {
                            1.0 - rho[base + f]
                        } else {
                            rho[base + f]
                        };
                        enum_[base + f] += wrong / err_s;
                        eden[base + f] += 1;
                    }
                }
            }
            for f in 0..n_facts {
                if eden[f] > 0 {
                    eps[f] = enum_[f] / eden[f] as f64;
                }
            }
            if cfg.normalize {
                renormalize(&mut eps);
            }
            for e in eps.iter_mut() {
                *e = clamp(*e);
            }
        }

        // ---- source trust θ(s) -----------------------------------------
        let mut tnum = vec![0.0f64; n];
        for (ci, cell) in ws.cells.iter().enumerate() {
            let base = offsets[ci];
            for (ic, &src) in cell.claim_sources.iter().enumerate() {
                let s = src.index();
                let claimed = cell.claim_cand[ic] as usize;
                for f in 0..cell.k() {
                    let positive = f == claimed;
                    let agreement = if positive {
                        rho[base + f]
                    } else {
                        1.0 - rho[base + f]
                    };
                    if third {
                        // Weight agreement by difficulty: being right on a
                        // hard fact is stronger evidence.
                        tnum[s] += 1.0 - (1.0 - agreement) / clamp(eps[base + f]).max(0.5);
                    } else {
                        tnum[s] += agreement;
                    }
                }
            }
        }
        let mut new_trust = trust.clone();
        for s in 0..n {
            if votes_per_source[s] > 0 {
                new_trust[s] = tnum[s] / votes_per_source[s] as f64;
            }
        }
        if cfg.normalize {
            renormalize(&mut new_trust);
        }

        let delta = max_abs_diff(&trust, &new_trust);
        trust = new_trust;
        if delta < cfg.tolerance || iterations >= cfg.max_iterations {
            break;
        }
    }

    // Predictions: per cell argmax ρ.
    for (ci, cell) in ws.cells.iter().enumerate() {
        let base = offsets[ci];
        let k = cell.k();
        if k == 0 {
            continue;
        }
        let mut best = 0usize;
        for i in 1..k {
            let (ri, rb) = (rho[base + i], rho[base + best]);
            if ri > rb || (ri == rb && cell.values[i] < cell.values[best]) {
                best = i;
            }
        }
        result.set_prediction(cell.object, cell.attribute, cell.values[best], rho[base + best]);
    }
    result.source_trust = trust;
    result.iterations = iterations;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{Dataset, DatasetBuilder, Value};

    fn variants() -> Vec<Box<dyn TruthDiscovery>> {
        vec![
            Box::new(TwoEstimates::default()),
            Box::new(ThreeEstimates::default()),
        ]
    }

    fn world() -> Dataset {
        let mut b = DatasetBuilder::new();
        for i in 0..6 {
            let a = format!("a{i}");
            b.claim("good1", "o", &a, Value::int(i)).unwrap();
            b.claim("good2", "o", &a, Value::int(i)).unwrap();
            b.claim("good3", "o", &a, Value::int(i)).unwrap();
            b.claim("liar", "o", &a, Value::int(50 + i)).unwrap();
        }
        b.build()
    }

    #[test]
    fn majority_is_followed() {
        let d = world();
        let o = d.object_id("o").unwrap();
        for algo in variants() {
            let r = algo.discover(&d.view_all());
            for i in 0..6 {
                let a = d.attribute_id(&format!("a{i}")).unwrap();
                assert_eq!(
                    r.prediction(o, a),
                    Some(d.value_id(&Value::int(i)).unwrap()),
                    "{}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn liar_gets_low_trust() {
        let d = world();
        let g = d.source_id("good1").unwrap();
        let l = d.source_id("liar").unwrap();
        for algo in variants() {
            let r = algo.discover(&d.view_all());
            assert!(
                r.source_trust[g.index()] > r.source_trust[l.index()],
                "{}: {:?}",
                algo.name(),
                r.source_trust
            );
        }
    }

    #[test]
    fn renormalize_maps_to_unit_interval() {
        let mut xs = vec![2.0, 4.0, 3.0];
        renormalize(&mut xs);
        assert_eq!(xs, vec![0.0, 1.0, 0.5]);
        // Constant vectors are untouched.
        let mut constant = vec![0.7, 0.7];
        renormalize(&mut constant);
        assert_eq!(constant, vec![0.7, 0.7]);
        let mut empty: Vec<f64> = vec![];
        renormalize(&mut empty);
    }

    #[test]
    fn deterministic_and_bounded() {
        let d = world();
        for algo in variants() {
            let r1 = algo.discover(&d.view_all());
            let r2 = algo.discover(&d.view_all());
            assert_eq!(r1.source_trust, r2.source_trust, "{}", algo.name());
            assert!(r1.iterations <= EstimatesConfig::default().max_iterations);
            for &t in &r1.source_trust {
                assert!((0.0..=1.0).contains(&t), "{}: {t}", algo.name());
            }
        }
    }

    #[test]
    fn single_candidate_cells_are_trivially_predicted() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(9)).unwrap();
        b.claim("s2", "o", "a", Value::int(9)).unwrap();
        let d = b.build();
        for algo in variants() {
            let r = algo.discover(&d.view_all());
            let o = d.object_id("o").unwrap();
            let a = d.attribute_id("a").unwrap();
            assert_eq!(
                r.prediction(o, a),
                Some(d.value_id(&Value::int(9)).unwrap()),
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn empty_view_ok() {
        let d = DatasetBuilder::new().build();
        for algo in variants() {
            assert!(algo.discover(&d.view_all()).is_empty(), "{}", algo.name());
        }
    }
}
