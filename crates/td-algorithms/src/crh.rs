//! CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD
//! 2014), an optimization-based truth-discovery framework.
//!
//! CRH minimizes `Σ_s w_s · Σ_{claims of s} loss(claim, truth)` by
//! alternating:
//!
//! 1. **truth update** — per cell, the value minimizing the weighted
//!    loss: the weighted *mode* for categorical data, the weighted
//!    *median* for numeric data (ℓ1 loss, robust to outliers);
//! 2. **weight update** — `w_s = -ln(Σ loss_s / Σ_total loss)`, giving
//!    low-error sources exponentially more say.
//!
//! Numeric losses are normalized per cell by the claim spread so
//! attributes on different scales contribute comparably — the
//! "heterogeneous data" part of the name, and the reason CRH is the
//! right extension algorithm for the Stocks workload's mixed
//! price/volume/ratio columns.

use td_model::{DatasetView, Value};

use crate::common::{max_abs_diff, Workspace};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Hyper-parameters of [`Crh`].
#[derive(Debug, Clone, Copy)]
pub struct CrhConfig {
    /// Convergence threshold on the max weight change.
    pub tolerance: f64,
    /// Hard iteration cap (the original paper converges in < 10).
    pub max_iterations: u32,
}

impl Default for CrhConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-6,
            max_iterations: 20,
        }
    }
}

/// The CRH algorithm. See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crh {
    /// Hyper-parameters.
    pub config: CrhConfig,
}

impl Crh {
    /// CRH with custom hyper-parameters.
    pub fn new(config: CrhConfig) -> Self {
        Self { config }
    }
}

impl TruthDiscovery for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let ws = Workspace::build(view, None);
        let n = ws.n_sources;
        let mut result = TruthResult::with_sources(n, 1.0);

        // Numeric payload per candidate (None ⇒ treat categorically) and
        // per-cell loss normalizer.
        let numeric: Vec<Vec<Option<f64>>> = ws
            .cells
            .iter()
            .map(|cell| {
                cell.values
                    .iter()
                    .map(|&v| match view.value(v) {
                        Value::Int(x) => Some(*x as f64),
                        Value::Float(x) => Some(*x),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let spread: Vec<f64> = ws
            .cells
            .iter()
            .zip(&numeric)
            .map(|(_, nums)| {
                let vals: Vec<f64> = nums.iter().filter_map(|&x| x).collect();
                if vals.len() < 2 {
                    return 1.0;
                }
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (hi - lo).max(1e-9)
            })
            .collect();

        let mut weights = vec![1.0f64; n];
        let mut pred: Vec<usize> = vec![0; ws.cells.len()];
        let mut iterations = 0u32;

        loop {
            iterations += 1;

            // ---- truth update ---------------------------------------
            for (ci, cell) in ws.cells.iter().enumerate() {
                let k = cell.k();
                let all_numeric = numeric[ci].iter().all(Option::is_some) && k > 1;
                if all_numeric {
                    // Weighted median over claims (each claim carries its
                    // source's weight); evaluated at candidate values.
                    let mut pts: Vec<(f64, f64)> = cell
                        .claim_sources
                        .iter()
                        .zip(&cell.claim_cand)
                        .map(|(s, &c)| {
                            (
                                numeric[ci][c as usize].expect("all numeric"),
                                weights[s.index()].max(1e-12),
                            )
                        })
                        .collect();
                    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN claims"));
                    let total: f64 = pts.iter().map(|p| p.1).sum();
                    let mut acc = 0.0;
                    let mut median = pts[0].0;
                    for &(x, w) in &pts {
                        acc += w;
                        if acc >= total / 2.0 {
                            median = x;
                            break;
                        }
                    }
                    // Snap to the closest candidate (one-truth setting:
                    // the answer must be a claimed value).
                    pred[ci] = (0..k)
                        .min_by(|&a, &b| {
                            let da = (numeric[ci][a].expect("numeric") - median).abs();
                            let db = (numeric[ci][b].expect("numeric") - median).abs();
                            da.partial_cmp(&db)
                                .expect("finite")
                                .then(cell.values[a].cmp(&cell.values[b]))
                        })
                        .expect("k > 0");
                } else {
                    // Weighted vote.
                    let mut scores = vec![0.0f64; k];
                    for (s, &c) in cell.claim_sources.iter().zip(&cell.claim_cand) {
                        scores[c as usize] += weights[s.index()];
                    }
                    pred[ci] = (0..k)
                        .max_by(|&a, &b| {
                            scores[a]
                                .partial_cmp(&scores[b])
                                .expect("finite")
                                .then(cell.values[b].cmp(&cell.values[a]))
                        })
                        .expect("k > 0");
                }
            }

            // ---- weight update --------------------------------------
            let mut loss = vec![0.0f64; n];
            for (ci, cell) in ws.cells.iter().enumerate() {
                let t = pred[ci];
                for (s, &c) in cell.claim_sources.iter().zip(&cell.claim_cand) {
                    let c = c as usize;
                    let l = match (numeric[ci][c], numeric[ci][t]) {
                        (Some(x), Some(truth)) => ((x - truth).abs() / spread[ci]).min(1.0),
                        _ => f64::from(c != t),
                    };
                    loss[s.index()] += l;
                }
            }
            let total_loss: f64 = loss.iter().sum::<f64>().max(1e-12);
            let mut new_weights = vec![0.0f64; n];
            for s in 0..n {
                if ws.claims_per_source[s] == 0 {
                    new_weights[s] = weights[s];
                    continue;
                }
                let share = (loss[s] / total_loss).clamp(1e-9, 1.0 - 1e-9);
                new_weights[s] = -share.ln();
            }
            // Normalize to unit max for comparability.
            let wmax = new_weights.iter().copied().fold(0.0f64, f64::max);
            if wmax > 0.0 {
                for w in new_weights.iter_mut() {
                    *w /= wmax;
                }
            }

            let delta = max_abs_diff(&weights, &new_weights);
            weights = new_weights;
            if delta < self.config.tolerance || iterations >= self.config.max_iterations {
                break;
            }
        }

        for (ci, cell) in ws.cells.iter().enumerate() {
            let t = pred[ci];
            // Confidence: weighted support share of the chosen value.
            let mut chosen = 0.0;
            let mut total = 0.0;
            for (s, &c) in cell.claim_sources.iter().zip(&cell.claim_cand) {
                let w = weights[s.index()];
                total += w;
                if c as usize == t {
                    chosen += w;
                }
            }
            let conf = if total > 0.0 { chosen / total } else { 0.0 };
            result.set_prediction(cell.object, cell.attribute, cell.values[t], conf);
        }
        result.source_trust = weights;
        result.iterations = iterations;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{Dataset, DatasetBuilder};

    fn numeric_world() -> Dataset {
        // Truth 100-ish; good sources report exact, sloppy source is off
        // by a lot; outliers must not drag the weighted median.
        let mut b = DatasetBuilder::new();
        for (o, truth) in [("o0", 100), ("o1", 250), ("o2", 40)] {
            for a in ["price", "volume"] {
                b.claim("exact1", o, a, Value::int(truth)).unwrap();
                b.claim("exact2", o, a, Value::int(truth)).unwrap();
                b.claim("close", o, a, Value::int(truth + 1)).unwrap();
                b.claim("outlier", o, a, Value::int(truth * 10)).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn weighted_median_resists_outliers() {
        let d = numeric_world();
        let r = Crh::default().discover(&d.view_all());
        for (o, truth) in [("o0", 100i64), ("o1", 250), ("o2", 40)] {
            let obj = d.object_id(o).unwrap();
            for a in ["price", "volume"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(
                    r.prediction(obj, attr),
                    d.value_id(&Value::int(truth)),
                    "({o}, {a})"
                );
            }
        }
    }

    #[test]
    fn outlier_source_gets_low_weight() {
        let d = numeric_world();
        let r = Crh::default().discover(&d.view_all());
        let exact = d.source_id("exact1").unwrap();
        let outlier = d.source_id("outlier").unwrap();
        assert!(
            r.source_trust[exact.index()] > r.source_trust[outlier.index()],
            "{:?}",
            r.source_trust
        );
    }

    #[test]
    fn categorical_cells_fall_back_to_weighted_vote() {
        let mut b = DatasetBuilder::new();
        for o in 0..3 {
            let obj = format!("o{o}");
            b.claim("g1", &obj, "name", Value::text(format!("right{o}"))).unwrap();
            b.claim("g2", &obj, "name", Value::text(format!("right{o}"))).unwrap();
            b.claim("bad", &obj, "name", Value::text(format!("wrong{o}"))).unwrap();
        }
        let d = b.build();
        let r = Crh::default().discover(&d.view_all());
        for o in 0..3 {
            let obj = d.object_id(&format!("o{o}")).unwrap();
            let attr = d.attribute_id("name").unwrap();
            assert_eq!(
                r.prediction(obj, attr),
                d.value_id(&Value::text(format!("right{o}")))
            );
        }
    }

    #[test]
    fn mixed_type_cells_are_categorical() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(5)).unwrap();
        b.claim("s2", "o", "a", Value::text("five")).unwrap();
        b.claim("s3", "o", "a", Value::int(5)).unwrap();
        let d = b.build();
        let r = Crh::default().discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        assert_eq!(r.prediction(o, a), d.value_id(&Value::int(5)));
    }

    #[test]
    fn deterministic_and_bounded() {
        let d = numeric_world();
        let r1 = Crh::default().discover(&d.view_all());
        let r2 = Crh::default().discover(&d.view_all());
        assert_eq!(r1.source_trust, r2.source_trust);
        assert!(r1.iterations <= CrhConfig::default().max_iterations);
        for &w in &r1.source_trust {
            assert!((0.0..=1.0 + 1e-9).contains(&w) && w.is_finite());
        }
        for (_, _, _, c) in r1.iter() {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn empty_view_ok() {
        let d = DatasetBuilder::new().build();
        assert!(Crh::default().discover(&d.view_all()).is_empty());
    }
}
