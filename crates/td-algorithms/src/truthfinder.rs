//! TruthFinder (Yin, Han & Yu, *Truth Discovery with Multiple Conflicting
//! Information Providers on the Web*, TKDE 2008).
//!
//! A Bayesian fixed point between source *trustworthiness* and value
//! *confidence*:
//!
//! 1. each source `s` gets a trust score `τ(s) = -ln(1 - t(s))`;
//! 2. each candidate value's raw confidence score is the sum of its
//!    supporters' `τ`;
//! 3. *implication* lets similar values support each other:
//!    `σ*(v) = σ(v) + ρ · Σ_{v'≠v} σ(v') · (sim(v, v') - base_sim)`;
//! 4. scores become probabilities through a dampened logistic,
//!    `c(v) = 1 / (1 + e^{-γ σ*(v)})`;
//! 5. a source's new trust is the mean confidence of the values it claims.
//!
//! Iterate until the trust vector stabilizes (cosine similarity), exactly
//! as the original paper prescribes.

use td_model::{DatasetView, SimilarityConfig, ValueSimilarity};

use crate::common::{clamp_unit, cosine_similarity, Workspace};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Hyper-parameters of [`TruthFinder`], defaulting to the values of the
/// original paper (and of the survey implementations the TD-AC paper
/// fixes its hyper-parameters from).
#[derive(Debug, Clone, Copy)]
pub struct TruthFinderConfig {
    /// Initial trustworthiness `t₀` of every source (paper: 0.9).
    pub initial_trust: f64,
    /// Dampening factor `γ` of the logistic (paper: 0.3).
    pub dampening: f64,
    /// Implication weight `ρ` — how strongly similar values support each
    /// other (paper: 0.5).
    pub implication_weight: f64,
    /// Base similarity subtracted before implication, letting dissimilar
    /// values *oppose* each other (paper: 0.5).
    pub base_similarity: f64,
    /// Convergence threshold on `1 - cos(t, t')` (paper: 0.001 %).
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
    /// Value-similarity tuning for the implication term.
    pub similarity: SimilarityConfig,
}

impl Default for TruthFinderConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            dampening: 0.3,
            implication_weight: 0.5,
            base_similarity: 0.5,
            tolerance: 1e-5,
            max_iterations: 20,
            similarity: SimilarityConfig::default(),
        }
    }
}

/// The TruthFinder algorithm. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TruthFinder {
    config: TruthFinderConfig,
}

impl TruthFinder {
    /// TruthFinder with custom hyper-parameters.
    pub fn new(config: TruthFinderConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TruthFinderConfig {
        &self.config
    }

    /// One scoring pass: computes per-candidate confidences from `trust`,
    /// accumulating per-source confidence sums, and (if `record` is set)
    /// writes predictions.
    fn pass(
        &self,
        ws: &Workspace,
        trust: &[f64],
        sums: &mut [f64],
        record: Option<&mut TruthResult>,
    ) {
        let cfg = &self.config;
        const EPS: f64 = 1e-9;
        let mut sigma: Vec<f64> = Vec::new();
        let mut adjusted: Vec<f64> = Vec::new();
        let mut result = record;

        for s in sums.iter_mut() {
            *s = 0.0;
        }

        for cell in &ws.cells {
            let k = cell.k();
            sigma.clear();
            sigma.resize(k, 0.0);
            for (ci, &src) in cell.claim_cand.iter().zip(&cell.claim_sources) {
                let t = clamp_unit(trust[src.index()], EPS);
                sigma[*ci as usize] += -(1.0 - t).ln();
            }
            adjusted.clear();
            adjusted.extend_from_slice(&sigma);
            if cfg.implication_weight != 0.0 {
                for i in 0..k {
                    let mut infl = 0.0;
                    for j in 0..k {
                        if i != j {
                            infl += sigma[j] * (cell.sim(j, i) - cfg.base_similarity);
                        }
                    }
                    adjusted[i] += cfg.implication_weight * infl;
                }
            }
            // Dampened logistic confidence.
            let mut best = 0usize;
            let mut best_conf = f64::NEG_INFINITY;
            for i in 0..k {
                let c = 1.0 / (1.0 + (-cfg.dampening * adjusted[i]).exp());
                adjusted[i] = c;
                // Deterministic tie-break toward the smaller value id.
                if c > best_conf || (c == best_conf && cell.values[i] < cell.values[best]) {
                    best = i;
                    best_conf = c;
                }
            }
            for (ci, &src) in cell.claim_cand.iter().zip(&cell.claim_sources) {
                sums[src.index()] += adjusted[*ci as usize];
            }
            if let Some(r) = result.as_deref_mut() {
                r.set_prediction(cell.object, cell.attribute, cell.values[best], best_conf);
            }
        }
    }
}

impl TruthDiscovery for TruthFinder {
    fn name(&self) -> &'static str {
        "TruthFinder"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let cfg = &self.config;
        let sim = ValueSimilarity::new(cfg.similarity);
        let need_sim = cfg.implication_weight != 0.0;
        let ws = Workspace::build(view, need_sim.then_some(&sim));

        let n = ws.n_sources;
        let mut trust = vec![cfg.initial_trust; n];
        let mut sums = vec![0.0; n];
        let mut result = TruthResult::with_sources(n, cfg.initial_trust);

        let mut iterations = 0u32;
        loop {
            iterations += 1;
            self.pass(&ws, &trust, &mut sums, None);
            let mut new_trust = trust.clone();
            for s in 0..n {
                if ws.claims_per_source[s] > 0 {
                    new_trust[s] = sums[s] / ws.claims_per_source[s] as f64;
                }
            }
            let converged = 1.0 - cosine_similarity(&trust, &new_trust) < cfg.tolerance;
            trust = new_trust;
            if converged || iterations >= cfg.max_iterations {
                break;
            }
        }

        // Final prediction pass with the converged trust.
        self.pass(&ws, &trust, &mut sums, Some(&mut result));
        result.source_trust = trust;
        result.iterations = iterations;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{Dataset, DatasetBuilder, Value};

    /// Three sources; s1 and s2 are consistently right on three cells,
    /// s3 consistently wrong — trust must reflect that and predictions
    /// must follow the trustworthy pair.
    fn reliability_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        for (a, good, bad) in [("a1", "g1", "b1"), ("a2", "g2", "b2"), ("a3", "g3", "b3")] {
            b.claim("s1", "o", a, Value::text(good)).unwrap();
            b.claim("s2", "o", a, Value::text(good)).unwrap();
            b.claim("s3", "o", a, Value::text(bad)).unwrap();
        }
        b.build()
    }

    #[test]
    fn trustworthy_sources_win() {
        let d = reliability_dataset();
        let r = TruthFinder::default().discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        for (a, good) in [("a1", "g1"), ("a2", "g2"), ("a3", "g3")] {
            let aid = d.attribute_id(a).unwrap();
            assert_eq!(r.prediction(o, aid), Some(d.value_id(&Value::text(good)).unwrap()));
        }
        let s1 = d.source_id("s1").unwrap();
        let s3 = d.source_id("s3").unwrap();
        assert!(r.source_trust[s1.index()] > r.source_trust[s3.index()]);
    }

    #[test]
    fn converges_within_cap_and_reports_iterations() {
        let d = reliability_dataset();
        let r = TruthFinder::default().discover(&d.view_all());
        assert!(r.iterations >= 1);
        assert!(r.iterations <= TruthFinderConfig::default().max_iterations);
    }

    #[test]
    fn confidences_are_probabilities() {
        let d = reliability_dataset();
        let r = TruthFinder::default().discover(&d.view_all());
        for (_, _, _, c) in r.iter() {
            assert!((0.0..=1.0).contains(&c), "confidence {c} out of range");
        }
    }

    #[test]
    fn implication_boosts_similar_values() {
        // Numeric cell: {100 (s1), 101 (s2), 999 (s3, s4)}. Without
        // implication the pair claiming 999 wins on votes; with strong
        // implication 100 and 101 support each other enough to flip the
        // outcome in the adjusted scores' favor at equal trust.
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(100)).unwrap();
        b.claim("s2", "o", "a", Value::int(101)).unwrap();
        b.claim("s3", "o", "a", Value::int(999)).unwrap();
        b.claim("s4", "o", "a", Value::int(999)).unwrap();
        let d = b.build();
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();

        let no_imp = TruthFinder::new(TruthFinderConfig {
            implication_weight: 0.0,
            max_iterations: 1,
            ..Default::default()
        })
        .discover(&d.view_all());
        assert_eq!(
            no_imp.prediction(o, a),
            Some(d.value_id(&Value::int(999)).unwrap()),
            "vote count decides without implication"
        );

        let imp = TruthFinder::new(TruthFinderConfig {
            implication_weight: 4.0,
            base_similarity: 0.2,
            max_iterations: 1,
            ..Default::default()
        })
        .discover(&d.view_all());
        let picked = imp.prediction(o, a).unwrap();
        let v100 = d.value_id(&Value::int(100)).unwrap();
        let v101 = d.value_id(&Value::int(101)).unwrap();
        assert!(
            picked == v100 || picked == v101,
            "mutually-supporting close values should win"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let d = reliability_dataset();
        let r1 = TruthFinder::default().discover(&d.view_all());
        let r2 = TruthFinder::default().discover(&d.view_all());
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.source_trust, r2.source_trust);
        let p1: Vec<_> = {
            let mut v: Vec<_> = r1.iter().collect();
            v.sort_by_key(|a| (a.0, a.1));
            v
        };
        let p2: Vec<_> = {
            let mut v: Vec<_> = r2.iter().collect();
            v.sort_by_key(|a| (a.0, a.1));
            v
        };
        assert_eq!(p1, p2);
    }

    #[test]
    fn works_on_attribute_restricted_view() {
        let d = reliability_dataset();
        let a1 = d.attribute_id("a1").unwrap();
        let r = TruthFinder::default().discover(&d.view_of(&[a1]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.source_trust.len(), d.n_sources());
    }

    #[test]
    fn empty_view_is_fine() {
        let d = DatasetBuilder::new().build();
        let r = TruthFinder::default().discover(&d.view_all());
        assert!(r.is_empty());
    }
}
