//! The output of a truth-discovery run.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use td_model::{AttributeId, ObjectId, ValueId};

/// The complete outcome of one truth-discovery run over a dataset view.
///
/// Besides the headline prediction per cell, the result carries the
/// selected value's confidence, the final per-source trust vector (in the
/// *global* source id space — TD-AC relies on this to merge per-partition
/// results), and the number of outer iterations performed (the paper's
/// `#Iteration` column).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "TruthResultRepr", into = "TruthResultRepr")]
pub struct TruthResult {
    predictions: HashMap<(ObjectId, AttributeId), (ValueId, f64)>,
    /// Final trust / accuracy score per source, indexed by `SourceId`.
    pub source_trust: Vec<f64>,
    /// Outer iterations until convergence (1 for single-pass algorithms).
    pub iterations: u32,
}

/// JSON-friendly shadow of [`TruthResult`] (tuple map keys are not
/// representable in JSON).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TruthResultRepr {
    /// `(object, attribute, value, confidence)` rows, sorted by cell.
    pub predictions: Vec<(ObjectId, AttributeId, ValueId, f64)>,
    /// See [`TruthResult::source_trust`].
    pub source_trust: Vec<f64>,
    /// See [`TruthResult::iterations`].
    pub iterations: u32,
}

impl From<TruthResultRepr> for TruthResult {
    fn from(r: TruthResultRepr) -> Self {
        TruthResult {
            predictions: r
                .predictions
                .into_iter()
                .map(|(o, a, v, c)| ((o, a), (v, c)))
                .collect(),
            source_trust: r.source_trust,
            iterations: r.iterations,
        }
    }
}

impl From<TruthResult> for TruthResultRepr {
    fn from(r: TruthResult) -> Self {
        let mut predictions: Vec<_> = r
            .predictions
            .into_iter()
            .map(|((o, a), (v, c))| (o, a, v, c))
            .collect();
        predictions.sort_by_key(|&(o, a, _, _)| (o, a));
        TruthResultRepr {
            predictions,
            source_trust: r.source_trust,
            iterations: r.iterations,
        }
    }
}

impl TruthResult {
    /// Creates an empty result with `n_sources` default-trust slots.
    pub fn with_sources(n_sources: usize, default_trust: f64) -> Self {
        Self {
            predictions: HashMap::new(),
            source_trust: vec![default_trust; n_sources],
            iterations: 0,
        }
    }

    /// Records the selected value and its confidence for a cell.
    pub fn set_prediction(
        &mut self,
        object: ObjectId,
        attribute: AttributeId,
        value: ValueId,
        confidence: f64,
    ) {
        self.predictions.insert((object, attribute), (value, confidence));
    }

    /// The selected value for a cell, if any.
    pub fn prediction(&self, object: ObjectId, attribute: AttributeId) -> Option<ValueId> {
        self.predictions.get(&(object, attribute)).map(|&(v, _)| v)
    }

    /// The confidence of the selected value for a cell, if any.
    pub fn confidence(&self, object: ObjectId, attribute: AttributeId) -> Option<f64> {
        self.predictions.get(&(object, attribute)).map(|&(_, c)| c)
    }

    /// Number of cells with a prediction.
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    /// Whether no prediction was made.
    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }

    /// Iterates `(object, attribute, value, confidence)` (unspecified
    /// order).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, AttributeId, ValueId, f64)> + '_ {
        self.predictions
            .iter()
            .map(|(&(o, a), &(v, c))| (o, a, v, c))
    }

    /// Merges another result into this one — the aggregation step of
    /// TD-AC (Algorithm 1, lines 20-24). Predictions are unioned (the
    /// partitions are disjoint so no cell can collide; on a collision the
    /// later result wins). Source trust is averaged element-wise and the
    /// iteration counter takes the max, mirroring "one logical pass".
    pub fn absorb(&mut self, other: &TruthResult) {
        for (&(o, a), &(v, c)) in &other.predictions {
            self.predictions.insert((o, a), (v, c));
        }
        if self.source_trust.len() == other.source_trust.len() {
            for (t, &u) in self.source_trust.iter_mut().zip(&other.source_trust) {
                *t = (*t + u) / 2.0;
            }
        } else if self.source_trust.is_empty() {
            self.source_trust = other.source_trust.clone();
        }
        self.iterations = self.iterations.max(other.iterations);
    }

    /// Merges a batch of per-partition results symmetrically — the
    /// aggregation step of TD-AC (Algorithm 1, lines 20-24) for a whole
    /// partition at once. Predictions are unioned (partitions are
    /// disjoint so no cell can collide; on a collision the later partial
    /// wins), source trust is the element-wise **arithmetic mean over
    /// all partials** (unlike chaining [`TruthResult::absorb`], which
    /// exponentially down-weights earlier partials), and the iteration
    /// counter takes the max. Partials with a mismatched (non-empty)
    /// trust length contribute predictions but not trust.
    pub fn merge_all(partials: &[TruthResult]) -> TruthResult {
        let mut merged = TruthResult::default();
        let trust_len = partials
            .iter()
            .map(|p| p.source_trust.len())
            .find(|&l| l > 0)
            .unwrap_or(0);
        let mut trust_sum = vec![0.0; trust_len];
        let mut trust_n = 0usize;
        for p in partials {
            for (&(o, a), &(v, c)) in &p.predictions {
                merged.predictions.insert((o, a), (v, c));
            }
            if p.source_trust.len() == trust_len && trust_len > 0 {
                for (s, &t) in trust_sum.iter_mut().zip(&p.source_trust) {
                    *s += t;
                }
                trust_n += 1;
            }
            merged.iterations = merged.iterations.max(p.iterations);
        }
        if trust_n > 0 {
            merged.source_trust = trust_sum
                .into_iter()
                .map(|s| s / trust_n as f64)
                .collect();
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oa(o: u32, a: u32) -> (ObjectId, AttributeId) {
        (ObjectId::new(o), AttributeId::new(a))
    }

    #[test]
    fn set_and_get_predictions() {
        let mut r = TruthResult::with_sources(2, 0.8);
        let (o, a) = oa(0, 0);
        assert!(r.is_empty());
        r.set_prediction(o, a, ValueId::new(7), 0.9);
        assert_eq!(r.prediction(o, a), Some(ValueId::new(7)));
        assert_eq!(r.confidence(o, a), Some(0.9));
        assert_eq!(r.len(), 1);
        assert_eq!(r.source_trust, vec![0.8, 0.8]);
    }

    #[test]
    fn absorb_unions_disjoint_predictions() {
        let mut a = TruthResult::with_sources(2, 0.5);
        a.set_prediction(ObjectId::new(0), AttributeId::new(0), ValueId::new(1), 1.0);
        a.iterations = 3;
        let mut b = TruthResult::with_sources(2, 1.0);
        b.set_prediction(ObjectId::new(0), AttributeId::new(1), ValueId::new(2), 0.5);
        b.iterations = 5;
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.source_trust, vec![0.75, 0.75]);
    }

    #[test]
    fn merge_all_averages_trust_symmetrically() {
        let mut parts = Vec::new();
        for (i, trust) in [0.2, 0.4, 0.9].iter().enumerate() {
            let mut p = TruthResult::with_sources(2, *trust);
            p.set_prediction(
                ObjectId::new(i as u32),
                AttributeId::new(0),
                ValueId::new(i as u32),
                1.0,
            );
            p.iterations = i as u32 + 1;
            parts.push(p);
        }
        let merged = TruthResult::merge_all(&parts);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.iterations, 3);
        // Plain mean of [0.2, 0.4, 0.9] — chained absorb would give the
        // last partial half the weight ((0.2/2 + 0.4/2)/2 + 0.9/2 = 0.6).
        for t in &merged.source_trust {
            assert!((t - 0.5).abs() < 1e-12, "expected 0.5, got {t}");
        }
    }

    #[test]
    fn merge_all_of_empty_slice_is_empty() {
        let merged = TruthResult::merge_all(&[]);
        assert!(merged.is_empty());
        assert!(merged.source_trust.is_empty());
        assert_eq!(merged.iterations, 0);
    }

    #[test]
    fn merge_all_skips_mismatched_trust_lengths() {
        let mut a = TruthResult::with_sources(2, 0.5);
        a.set_prediction(ObjectId::new(0), AttributeId::new(0), ValueId::new(1), 1.0);
        let mut b = TruthResult::with_sources(3, 1.0);
        b.set_prediction(ObjectId::new(0), AttributeId::new(1), ValueId::new(2), 0.5);
        let merged = TruthResult::merge_all(&[a, b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.source_trust, vec![0.5, 0.5]);
    }

    #[test]
    fn merge_all_of_single_partial_is_identity() {
        let mut p = TruthResult::with_sources(3, 0.7);
        p.set_prediction(ObjectId::new(0), AttributeId::new(0), ValueId::new(1), 0.9);
        p.set_prediction(ObjectId::new(1), AttributeId::new(2), ValueId::new(3), 0.4);
        p.iterations = 6;
        let merged = TruthResult::merge_all(std::slice::from_ref(&p));
        assert_eq!(merged.len(), p.len());
        for (o, a, v, c) in p.iter() {
            assert_eq!(merged.prediction(o, a), Some(v));
            assert_eq!(merged.confidence(o, a).map(f64::to_bits), Some(c.to_bits()));
        }
        assert_eq!(merged.source_trust, p.source_trust);
        assert_eq!(merged.iterations, 6);
    }

    #[test]
    fn merge_all_later_partial_wins_on_overlap() {
        // Partitions are disjoint in TD-AC, but the documented collision
        // semantics (later partial wins) must hold for robustness.
        let (o, a) = oa(0, 0);
        let mut first = TruthResult::with_sources(2, 0.5);
        first.set_prediction(o, a, ValueId::new(1), 0.9);
        first.set_prediction(ObjectId::new(1), AttributeId::new(0), ValueId::new(7), 0.3);
        let mut second = TruthResult::with_sources(2, 0.5);
        second.set_prediction(o, a, ValueId::new(2), 0.6);
        let merged = TruthResult::merge_all(&[first.clone(), second.clone()]);
        assert_eq!(merged.prediction(o, a), Some(ValueId::new(2)));
        assert_eq!(merged.confidence(o, a), Some(0.6));
        // The non-colliding cell survives from the earlier partial.
        assert_eq!(
            merged.prediction(ObjectId::new(1), AttributeId::new(0)),
            Some(ValueId::new(7))
        );
        assert_eq!(merged.len(), 2);
        // Swapping the order flips the winner.
        let flipped = TruthResult::merge_all(&[second, first]);
        assert_eq!(flipped.prediction(o, a), Some(ValueId::new(1)));
    }

    #[test]
    fn merge_all_of_two_agrees_with_pairwise_absorb() {
        // With exactly two partials the symmetric mean and the chained
        // pairwise mean coincide — bitwise, since both compute (a+b)/2.
        let mut a = TruthResult::with_sources(3, 0.0);
        a.source_trust = vec![0.1, 0.625, 0.9375];
        a.set_prediction(ObjectId::new(0), AttributeId::new(0), ValueId::new(1), 0.75);
        a.iterations = 2;
        let mut b = TruthResult::with_sources(3, 0.0);
        b.source_trust = vec![0.3, 0.5, 0.0625];
        b.set_prediction(ObjectId::new(1), AttributeId::new(1), ValueId::new(2), 0.5);
        b.iterations = 7;
        let merged = TruthResult::merge_all(&[a.clone(), b.clone()]);
        let mut absorbed = a.clone();
        absorbed.absorb(&b);
        assert_eq!(merged.len(), absorbed.len());
        for (o, at, v, c) in merged.iter() {
            assert_eq!(absorbed.prediction(o, at), Some(v));
            assert_eq!(absorbed.confidence(o, at).map(f64::to_bits), Some(c.to_bits()));
        }
        let bits = |r: &TruthResult| -> Vec<u64> {
            r.source_trust.iter().map(|t| t.to_bits()).collect()
        };
        assert_eq!(bits(&merged), bits(&absorbed));
        assert_eq!(merged.iterations, absorbed.iterations);
    }

    #[test]
    fn merge_all_ignores_empty_partials_for_trust() {
        // A default (trustless) partial contributes predictions but must
        // not drag the trust mean toward zero.
        let mut with_trust = TruthResult::with_sources(2, 0.8);
        with_trust.set_prediction(ObjectId::new(0), AttributeId::new(0), ValueId::new(1), 1.0);
        let mut trustless = TruthResult::default();
        trustless.set_prediction(ObjectId::new(0), AttributeId::new(1), ValueId::new(2), 0.5);
        let merged = TruthResult::merge_all(&[with_trust, trustless]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.source_trust, vec![0.8, 0.8]);
    }

    #[test]
    fn iter_yields_all() {
        let mut r = TruthResult::with_sources(0, 0.0);
        r.set_prediction(ObjectId::new(1), AttributeId::new(2), ValueId::new(3), 0.4);
        let rows: Vec<_> = r.iter().collect();
        assert_eq!(
            rows,
            vec![(ObjectId::new(1), AttributeId::new(2), ValueId::new(3), 0.4)]
        );
    }
}
