//! Behavioral conformance suite: scenarios every truth-discovery
//! algorithm in the crate must handle identically at the contract level
//! (and sensibly at the semantic level).

use td_algorithms::registry::all_algorithms;
use td_algorithms::{Dart, Ensemble, MajorityVote, TruthDiscovery, TruthFinder};
use td_model::{Dataset, DatasetBuilder, Value};

/// Everything under test: the 12 registry algorithms plus the composite
/// ones that are not name-registered.
fn roster() -> Vec<Box<dyn TruthDiscovery + Send + Sync>> {
    let mut v = all_algorithms();
    v.push(Box::new(Dart::default()));
    v.push(Box::new(Ensemble::new(vec![
        Box::new(MajorityVote),
        Box::new(TruthFinder::default()),
    ])));
    v
}

#[test]
fn unanimous_consensus_is_always_respected() {
    // Every source agrees on every cell: no algorithm may deviate.
    let mut b = DatasetBuilder::new();
    for o in 0..3 {
        let obj = format!("o{o}");
        for a in ["a", "b"] {
            for s in ["s1", "s2", "s3"] {
                b.claim(s, &obj, a, Value::int(o * 10)).unwrap();
            }
        }
    }
    let d = b.build();
    for algo in roster() {
        let r = algo.discover(&d.view_all());
        for o in 0..3 {
            let obj = d.object_id(&format!("o{o}")).unwrap();
            for a in ["a", "b"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(
                    r.prediction(obj, attr),
                    d.value_id(&Value::int(o * 10)),
                    "{} broke a unanimous consensus",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn single_source_claims_are_taken_at_face_value() {
    let mut b = DatasetBuilder::new();
    b.claim("solo", "o", "a", Value::text("only-answer")).unwrap();
    let d = b.build();
    for algo in roster() {
        let r = algo.discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        assert_eq!(
            r.prediction(o, a),
            d.value_id(&Value::text("only-answer")),
            "{}",
            algo.name()
        );
    }
}

#[test]
fn overwhelming_majorities_win_everywhere() {
    // 9 agreeing sources vs 1 dissenter on every cell.
    let mut b = DatasetBuilder::new();
    for o in 0..4 {
        let obj = format!("o{o}");
        for a in ["x", "y"] {
            for s in 0..9 {
                b.claim(&format!("s{s}"), &obj, a, Value::int(o)).unwrap();
            }
            b.claim("dissenter", &obj, a, Value::int(999)).unwrap();
        }
    }
    let d = b.build();
    for algo in roster() {
        let r = algo.discover(&d.view_all());
        for o in 0..4 {
            let obj = d.object_id(&format!("o{o}")).unwrap();
            for a in ["x", "y"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(
                    r.prediction(obj, attr),
                    d.value_id(&Value::int(o)),
                    "{} overruled a 9:1 majority",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn results_are_stable_across_repeated_runs() {
    let d = mixed_dataset();
    for algo in roster() {
        let r1 = algo.discover(&d.view_all());
        let r2 = algo.discover(&d.view_all());
        assert_eq!(r1.len(), r2.len(), "{}", algo.name());
        assert_eq!(r1.iterations, r2.iterations, "{}", algo.name());
        assert_eq!(r1.source_trust, r2.source_trust, "{}", algo.name());
        for cell in d.cells() {
            assert_eq!(
                r1.prediction(cell.object, cell.attribute),
                r2.prediction(cell.object, cell.attribute),
                "{}",
                algo.name()
            );
        }
    }
}

#[test]
fn attribute_views_restrict_prediction_scope() {
    let d = mixed_dataset();
    let keep: Vec<_> = d.attribute_ids().take(1).collect();
    let view = d.view_of(&keep);
    for algo in roster() {
        let r = algo.discover(&view);
        for (o, a, _, _) in r.iter() {
            assert_eq!(a, keep[0], "{} predicted outside its view", algo.name());
            let _ = o;
        }
        assert_eq!(
            r.source_trust.len(),
            d.n_sources(),
            "{} lost the global source space",
            algo.name()
        );
    }
}

#[test]
fn confidences_and_trust_are_finite_unit_interval() {
    let d = mixed_dataset();
    for algo in roster() {
        let r = algo.discover(&d.view_all());
        for (_, _, _, c) in r.iter() {
            assert!(c.is_finite() && (0.0..=1.0 + 1e-9).contains(&c), "{}", algo.name());
        }
        for &t in &r.source_trust {
            assert!(t.is_finite() && (-1e-9..=1.0 + 1e-9).contains(&t), "{}", algo.name());
        }
    }
}

/// Mixed workload: honest majority, one liar, one sparse specialist,
/// text + int values, and a cell with a unanimous answer.
fn mixed_dataset() -> Dataset {
    let mut b = DatasetBuilder::new();
    for o in 0..5 {
        let obj = format!("o{o}");
        b.claim("good1", &obj, "num", Value::int(o)).unwrap();
        b.claim("good2", &obj, "num", Value::int(o)).unwrap();
        b.claim("liar", &obj, "num", Value::int(o + 50)).unwrap();
        b.claim("good1", &obj, "label", Value::text(format!("name{o}"))).unwrap();
        b.claim("good2", &obj, "label", Value::text(format!("name{o}"))).unwrap();
        b.claim("liar", &obj, "label", Value::text("junk")).unwrap();
        if o % 2 == 0 {
            b.claim("specialist", &obj, "num", Value::int(o)).unwrap();
        }
        for s in ["good1", "good2", "liar", "specialist"] {
            b.claim(s, &obj, "unanimous", Value::bool(true)).unwrap();
        }
    }
    b.build()
}
