//! Typed failures of the shard coordinator and worker protocol.

use tdac_core::ShardStrategy;

/// Everything that can go wrong between "validate the plan" and "merge
/// the last partial".
///
/// Worker-side failures are *typed and attributed*: a shard that dies,
/// stalls, or talks garbage surfaces as [`ShardError::ShardFailed`],
/// [`ShardError::ShardTimeout`] or [`ShardError::Protocol`] naming the
/// shard index — never as a silently thinner merge.
#[derive(Debug)]
pub enum ShardError {
    /// The coordinator's own TD-AC phases (model selection, config
    /// validation) failed.
    Tdac(tdac_core::TdacError),
    /// Building a shard slice dataset failed.
    Model(td_model::ModelError),
    /// Persisting or loading a `.tds` slice failed.
    Store(td_store::StoreError),
    /// Spawning or talking to a worker process failed at the OS level.
    Io(std::io::Error),
    /// A worker emitted a line the coordinator could not parse.
    Protocol {
        /// Which shard misbehaved.
        shard: usize,
        /// What was wrong with the line.
        detail: String,
    },
    /// A worker died (exited without its `Done` marker) or reported an
    /// internal error.
    ShardFailed {
        /// Which shard failed.
        shard: usize,
        /// The worker's error report, or a description of how it died.
        detail: String,
    },
    /// A worker blew past its deadline without even reporting the
    /// degradation itself — the coordinator gave up waiting.
    ShardTimeout {
        /// Which shard stalled.
        shard: usize,
        /// How long the coordinator waited before declaring it dead.
        waited_ms: u64,
    },
    /// The base algorithm cannot run under this strategy:
    /// `HashByObject` needs `TruthDiscovery::trust_from_predictions`
    /// (trust as a pure function of the predictions), which this
    /// algorithm does not implement.
    StrategyUnsupported {
        /// The algorithm that refused.
        algorithm: String,
        /// The strategy it refused under.
        strategy: ShardStrategy,
    },
    /// `algorithm_by_name` did not recognize the requested base
    /// algorithm.
    UnknownAlgorithm(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Tdac(e) => write!(f, "{e}"),
            ShardError::Model(e) => write!(f, "{e}"),
            ShardError::Store(e) => write!(f, "{e}"),
            ShardError::Io(e) => write!(f, "worker process i/o: {e}"),
            ShardError::Protocol { shard, detail } => {
                write!(f, "shard {shard} protocol violation: {detail}")
            }
            ShardError::ShardFailed { shard, detail } => {
                write!(f, "shard {shard} failed: {detail}")
            }
            ShardError::ShardTimeout { shard, waited_ms } => {
                write!(
                    f,
                    "shard {shard} timed out: no progress after {waited_ms} ms"
                )
            }
            ShardError::StrategyUnsupported {
                algorithm,
                strategy,
            } => write!(
                f,
                "algorithm {algorithm:?} does not support {strategy:?} sharding: \
                 its source trust is not a pure function of the predictions \
                 (no trust_from_predictions override)"
            ),
            ShardError::UnknownAlgorithm(name) => {
                write!(f, "unknown base algorithm {name:?}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Tdac(e) => Some(e),
            ShardError::Model(e) => Some(e),
            ShardError::Store(e) => Some(e),
            ShardError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdac_core::TdacError> for ShardError {
    fn from(e: tdac_core::TdacError) -> Self {
        ShardError::Tdac(e)
    }
}

impl From<td_model::ModelError> for ShardError {
    fn from(e: td_model::ModelError) -> Self {
        ShardError::Model(e)
    }
}

impl From<td_store::StoreError> for ShardError {
    fn from(e: td_store::StoreError) -> Self {
        ShardError::Store(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}
