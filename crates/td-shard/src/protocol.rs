//! The coordinator ⇄ worker wire protocol.
//!
//! Same idiom as td-serve's client protocol: one JSON document per
//! line, typed on both ends, unknown garbage rejected loudly. The
//! coordinator writes exactly one [`ShardJob`] line to the worker's
//! stdin and then closes it; the worker answers with a stream of
//! [`ShardMsg`] lines on stdout, terminated by [`ShardMsg::Done`].
//! Anything on stderr is free-form logging and never parsed.
//!
//! A worker that exits before `Done` — crash, kill, chaos — is
//! detected by the EOF on its stdout and surfaces as
//! [`ShardFailed`](crate::ShardError::ShardFailed); the merge never
//! quietly proceeds with fewer partials.

use serde::{Deserialize, Serialize};
use td_algorithms::TruthResult;
use td_model::AttributeId;
use td_obs::Degradation;
use tdac_core::Parallelism;

/// Environment variable for chaos testing: when set to a worker's own
/// shard index, that worker exits abruptly after emitting its first
/// partial — simulating a mid-run crash, on **every** attempt. Under
/// the default fail-fast [`RetryPolicy`](tdac_core::RetryPolicy) the
/// coordinator must turn this into a typed
/// [`ShardFailed`](crate::ShardError::ShardFailed) naming the shard;
/// with retries armed the shard burns every attempt and lands in the
/// in-process fallback. Set it on the coordinator's
/// [`WorkerCommand`](crate::WorkerCommand) envs, never globally.
pub const CHAOS_EXIT_ENV: &str = "TD_SHARD_CHAOS_EXIT";

/// Environment variable for per-attempt chaos schedules:
/// `"<shard>:<letters>"`, where letter *i* (1-indexed by the job's
/// `attempt`) picks the behavior of that attempt — `F` fail (exit
/// without `Done` after the first partial), `H` hang (sleep forever
/// after the first partial, forcing the coordinator's stall detection),
/// anything else or past the end of the string: succeed normally. So
/// `"1:F"` makes shard 1 die once and succeed on retry, `"0:FH"` makes
/// shard 0 die, then hang, then succeed. [`CHAOS_EXIT_ENV`] wins when
/// both are set.
pub const CHAOS_PLAN_ENV: &str = "TD_SHARD_CHAOS_PLAN";

/// One attribute group a worker must run, tagged with its index in the
/// *global* partition so partials reassemble in group order no matter
/// how groups were dealt across shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAssignment {
    /// Index of this group in the coordinator's global partition.
    pub group: usize,
    /// The group's attributes (global ids, valid in the slice store —
    /// slices keep the parent's interner tables).
    pub attributes: Vec<AttributeId>,
}

/// The single job line a worker reads from stdin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardJob {
    /// This worker's shard index (also its chaos-injection key).
    pub shard: usize,
    /// Base algorithm name, resolved via
    /// `td_algorithms::registry::algorithm_by_name`.
    pub algorithm: String,
    /// Path of the `.tds` slice the coordinator extracted for this
    /// shard. Workers seed through the store's zero-copy load path.
    pub store_path: String,
    /// Rayon parallelism for the worker's own group loop
    /// (`ShardPlan::worker_parallelism`).
    pub parallelism: Parallelism,
    /// Per-shard deadline in milliseconds (`ShardPlan::worker_deadline_ms`):
    /// the worker stops at the next group boundary past it and reports
    /// a [`ShardMsg::Degraded`] instead of more partials.
    pub deadline_ms: Option<u64>,
    /// Which spawn attempt this job belongs to, 1-based — the
    /// supervisor's retry counter, echoed here so chaos schedules
    /// ([`CHAOS_PLAN_ENV`]) can vary behavior per attempt. Absent in
    /// job lines from pre-retry coordinators; workers treat 0 as 1.
    #[serde(default)]
    pub attempt: u32,
    /// The groups this shard executes.
    pub groups: Vec<GroupAssignment>,
}

/// One finished per-group base run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupPartial {
    /// Index of the group in the coordinator's global partition.
    pub group: usize,
    /// The base algorithm's result over the shard's view of the group.
    pub result: TruthResult,
}

/// A worker-side error report (panic in the base algorithm, unreadable
/// slice, unknown algorithm) — the worker's last line before exiting
/// non-zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerFailure {
    /// Which phase failed (`"load"`, `"resolve"`, `"group_run"`).
    pub phase: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A worker → coordinator message; one per stdout line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ShardMsg {
    /// One group's base run finished.
    Partial(GroupPartial),
    /// The worker hit its deadline: no further partials will come, and
    /// the coordinator must degrade the whole run (a partial merge is
    /// never an option).
    Degraded(Degradation),
    /// The worker failed; `ShardMsg::Done` will not follow.
    Failed(WorkerFailure),
    /// Clean end-of-stream marker: every assigned group was reported.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{DatasetBuilder, Value};

    #[test]
    fn job_round_trips_through_json_lines() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a1", Value::int(1)).unwrap();
        b.claim("s", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        let attrs: Vec<AttributeId> = d.attribute_ids().collect();
        let job = ShardJob {
            shard: 3,
            algorithm: "MajorityVote".into(),
            store_path: "/tmp/slice.tds".into(),
            parallelism: Parallelism::Threads(2),
            deadline_ms: Some(750),
            attempt: 2,
            groups: vec![
                GroupAssignment {
                    group: 0,
                    attributes: vec![attrs[0]],
                },
                GroupAssignment {
                    group: 1,
                    attributes: vec![attrs[1]],
                },
            ],
        };
        let line = serde_json::to_string(&job).unwrap();
        assert!(!line.contains('\n'), "wire format is one line per job");
        let back: ShardJob = serde_json::from_str(&line).unwrap();
        assert_eq!(back, job);

        // Job lines from pre-retry coordinators carry no `attempt` key;
        // they deserialize to 0 (which workers treat as attempt 1).
        let value: serde_json::Value = serde_json::from_str(&line).unwrap();
        let serde_json::Value::Object(map) = value else {
            panic!("job serializes as an object")
        };
        let stripped: serde_json::Map = map.into_iter().filter(|(k, _)| k != "attempt").collect();
        let legacy: ShardJob =
            serde_json::from_value(&serde_json::Value::Object(stripped)).unwrap();
        assert_eq!(legacy.attempt, 0);
        assert_eq!(legacy.groups, job.groups);
    }

    #[test]
    fn messages_round_trip() {
        let mut result = TruthResult::with_sources(2, 0.0);
        result.iterations = 1;
        let msgs = [
            ShardMsg::Partial(GroupPartial { group: 4, result }),
            ShardMsg::Failed(WorkerFailure {
                phase: "group_run".into(),
                detail: "base algorithm panicked".into(),
            }),
            ShardMsg::Done,
        ];
        for msg in &msgs {
            let line = serde_json::to_string(msg).unwrap();
            let back: ShardMsg = serde_json::from_str(&line).unwrap();
            match (msg, &back) {
                (ShardMsg::Partial(a), ShardMsg::Partial(b)) => {
                    assert_eq!(a.group, b.group);
                    assert_eq!(a.result.iterations, b.result.iterations);
                    assert_eq!(a.result.source_trust, b.result.source_trust);
                }
                (ShardMsg::Failed(a), ShardMsg::Failed(b)) => assert_eq!(a, b),
                (ShardMsg::Done, ShardMsg::Done) => {}
                _ => panic!("variant changed across the wire"),
            }
        }
    }
}
