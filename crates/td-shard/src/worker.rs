//! The worker half: runs inside a `tdc worker` / `td-verify worker`
//! child process, executing one shard's groups against its `.tds`
//! slice.
//!
//! A worker is deliberately dumb: it does **no** model selection, no
//! merging, no strategy logic. It loads the slice, resolves the base
//! algorithm, runs `discover` once per assigned group, and streams the
//! partials back. Everything clever — and everything that must be
//! bit-identical to the in-process path — lives in the coordinator.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use td_algorithms::registry::algorithm_by_name;
use td_algorithms::TruthDiscovery;
use td_obs::{Budget, ExecutionLimits, Observer};
use td_store::DatasetStore;

use crate::protocol::{
    GroupPartial, ShardJob, ShardMsg, WorkerFailure, CHAOS_EXIT_ENV, CHAOS_PLAN_ENV,
};

/// What chaos injection asks of this worker run, resolved once from the
/// environment before the group loop starts. Fallback execution inside
/// the coordinator passes [`ChaosAction::None`] explicitly — the
/// coordinator process often *inherits* the chaos variables it set for
/// its children, and the in-process fallback must be immune to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Run normally.
    None,
    /// Exit abruptly (no `Done`) after the first partial.
    Exit,
    /// Sleep forever after the first partial, forcing the
    /// coordinator's stall detection to fire.
    Hang,
}

/// Resolves the chaos action for `(shard, attempt)` from the process
/// environment: [`CHAOS_EXIT_ENV`] (always die) wins over
/// [`CHAOS_PLAN_ENV`] (per-attempt schedule).
fn chaos_from_env(shard: usize, attempt: u32) -> ChaosAction {
    if std::env::var(CHAOS_EXIT_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        == Some(shard)
    {
        return ChaosAction::Exit;
    }
    match std::env::var(CHAOS_PLAN_ENV) {
        Ok(plan) => chaos_from_plan(&plan, shard, attempt),
        Err(_) => ChaosAction::None,
    }
}

/// The pure schedule lookup behind [`CHAOS_PLAN_ENV`]:
/// `"<shard>:<letters>"`, letter `attempt` (1-indexed) ∈ {`F`ail,
/// `H`ang, anything else = succeed}; past the end = succeed.
fn chaos_from_plan(plan: &str, shard: usize, attempt: u32) -> ChaosAction {
    let Some((target, letters)) = plan.split_once(':') else {
        return ChaosAction::None;
    };
    if target.trim().parse::<usize>().ok() != Some(shard) {
        return ChaosAction::None;
    }
    let idx = (attempt.max(1) - 1) as usize;
    match letters.chars().nth(idx) {
        Some('F') | Some('f') => ChaosAction::Exit,
        Some('H') | Some('h') => ChaosAction::Hang,
        _ => ChaosAction::None,
    }
}

/// Reads one [`ShardJob`] line from real stdin, streams [`ShardMsg`]
/// lines to real stdout, and returns the process exit code. Binary
/// front ends (`tdc worker`, `td-verify worker`) call this and
/// `std::process::exit` the result.
pub fn worker_main() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_worker(stdin.lock(), stdout.lock())
}

/// [`worker_main`] over caller-supplied streams, for in-process tests.
pub fn run_worker(mut input: impl BufRead, mut out: impl Write) -> i32 {
    let mut line = String::new();
    if let Err(e) = input.read_line(&mut line) {
        return fail(&mut out, "load", format!("reading job line: {e}"));
    }
    let job: ShardJob = match serde_json::from_str(line.trim()) {
        Ok(job) => job,
        Err(e) => return fail(&mut out, "load", format!("parsing job line: {e}")),
    };
    let chaos = chaos_from_env(job.shard, job.attempt);
    execute(&job, chaos, &mut out)
}

/// The worker's group loop over an already-parsed job: load the slice,
/// resolve the base algorithm, stream partials, finish with `Done`.
/// Shared verbatim between child processes ([`run_worker`]) and the
/// coordinator's in-process fallback after exhausted retries — the one
/// difference is that the fallback pins `chaos` to
/// [`ChaosAction::None`].
pub(crate) fn execute(job: &ShardJob, chaos: ChaosAction, out: &mut impl Write) -> i32 {
    let store = match DatasetStore::load(&job.store_path) {
        Ok(store) => store,
        Err(e) => {
            return fail(
                out,
                "load",
                format!("loading slice {:?}: {e}", job.store_path),
            )
        }
    };
    let Some(base) = algorithm_by_name(&job.algorithm) else {
        return fail(
            out,
            "resolve",
            format!("unknown base algorithm {:?}", job.algorithm),
        );
    };
    let limits = match job.deadline_ms {
        Some(ms) => ExecutionLimits::none().with_deadline(Duration::from_millis(ms)),
        None => ExecutionLimits::none(),
    };
    let obs = Observer::disabled();
    let budget = Budget::arm(&limits, &obs);

    job.parallelism.install(|| {
        for assignment in &job.groups {
            // Deadlines are honored at group boundaries: the shard
            // stops early and reports the degradation itself; a shard
            // stuck *inside* a base run is the coordinator's timeout
            // to catch.
            if let Some(budget) = budget.as_ref() {
                if let Some(deg) = budget.check("shard_group_run") {
                    if emit(out, &ShardMsg::Degraded(deg)).is_err() {
                        return 1;
                    }
                    return finish(out);
                }
            }
            let view = store.dataset.view_of(&assignment.attributes);
            let result = match catch_unwind(AssertUnwindSafe(|| base.discover(&view))) {
                Ok(result) => result,
                Err(_) => {
                    return fail(
                        out,
                        "group_run",
                        format!("base algorithm panicked on group {}", assignment.group),
                    )
                }
            };
            let partial = GroupPartial {
                group: assignment.group,
                result,
            };
            if emit(out, &ShardMsg::Partial(partial)).is_err() {
                return 1;
            }
            match chaos {
                ChaosAction::None => {}
                // Die without Done — the coordinator must notice.
                ChaosAction::Exit => return 101,
                ChaosAction::Hang => loop {
                    std::thread::sleep(Duration::from_secs(3_600));
                },
            }
        }
        match chaos {
            ChaosAction::None => finish(out),
            ChaosAction::Exit => 101,
            ChaosAction::Hang => loop {
                std::thread::sleep(Duration::from_secs(3_600));
            },
        }
    })
}

fn finish(out: &mut impl Write) -> i32 {
    match emit(out, &ShardMsg::Done) {
        Ok(()) => 0,
        Err(_) => 1,
    }
}

fn fail(out: &mut impl Write, phase: &str, detail: String) -> i32 {
    let msg = ShardMsg::Failed(WorkerFailure {
        phase: phase.to_string(),
        detail,
    });
    let _ = emit(out, &msg);
    2
}

fn emit(out: &mut impl Write, msg: &ShardMsg) -> std::io::Result<()> {
    let line = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(out, "{line}")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::GroupAssignment;
    use td_model::{AttributeId, DatasetBuilder, Value};
    use tdac_core::Parallelism;

    fn slice_on_disk() -> (DatasetStore, std::path::PathBuf, Vec<AttributeId>) {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        let attrs: Vec<AttributeId> = d.attribute_ids().collect();
        let store = DatasetStore::new(d);
        let path = std::env::temp_dir().join(format!(
            "td-shard-worker-test-{}-{:p}.tds",
            std::process::id(),
            &store
        ));
        store.save(&path).unwrap();
        (store, path, attrs)
    }

    fn run_job(job: &ShardJob) -> (i32, Vec<ShardMsg>) {
        let input = format!("{}\n", serde_json::to_string(job).unwrap());
        let mut out = Vec::new();
        let code = run_worker(input.as_bytes(), &mut out);
        let msgs = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str::<ShardMsg>(l).unwrap())
            .collect();
        (code, msgs)
    }

    #[test]
    fn runs_groups_and_reports_done() {
        let (store, path, attrs) = slice_on_disk();
        let job = ShardJob {
            shard: 0,
            algorithm: "MajorityVote".into(),
            store_path: path.display().to_string(),
            parallelism: Parallelism::Threads(1),
            deadline_ms: None,
            attempt: 1,
            groups: vec![
                GroupAssignment {
                    group: 0,
                    attributes: vec![attrs[0]],
                },
                GroupAssignment {
                    group: 1,
                    attributes: vec![attrs[1]],
                },
            ],
        };
        let (code, msgs) = run_job(&job);
        std::fs::remove_file(&path).ok();
        assert_eq!(code, 0);
        assert_eq!(msgs.len(), 3);
        let ShardMsg::Partial(p0) = &msgs[0] else {
            panic!("expected first partial")
        };
        assert_eq!(p0.group, 0);
        // Bit-identical to an in-process discover over the same view.
        let direct = td_algorithms::MajorityVote.discover(&store.dataset.view_of(&attrs[..1]));
        assert_eq!(
            p0.result.iter().collect::<Vec<_>>(),
            direct.iter().collect::<Vec<_>>()
        );
        for (got, want) in p0.result.source_trust.iter().zip(&direct.source_trust) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert!(matches!(msgs[1], ShardMsg::Partial(_)));
        assert!(matches!(msgs[2], ShardMsg::Done));
    }

    #[test]
    fn unknown_algorithm_is_a_typed_failure() {
        let (_store, path, attrs) = slice_on_disk();
        let job = ShardJob {
            shard: 0,
            algorithm: "NoSuchAlgorithm".into(),
            store_path: path.display().to_string(),
            parallelism: Parallelism::Threads(1),
            deadline_ms: None,
            attempt: 1,
            groups: vec![GroupAssignment {
                group: 0,
                attributes: attrs,
            }],
        };
        let (code, msgs) = run_job(&job);
        std::fs::remove_file(&path).ok();
        assert_ne!(code, 0);
        assert_eq!(msgs.len(), 1);
        let ShardMsg::Failed(f) = &msgs[0] else {
            panic!("expected a failure report")
        };
        assert_eq!(f.phase, "resolve");
    }

    #[test]
    fn garbage_job_line_fails_cleanly() {
        let mut out = Vec::new();
        let code = run_worker("not json at all\n".as_bytes(), &mut out);
        assert_ne!(code, 0);
        let text = String::from_utf8(out).unwrap();
        let msg: ShardMsg = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert!(matches!(msg, ShardMsg::Failed(_)));
    }

    #[test]
    fn blown_deadline_degrades_at_a_group_boundary() {
        // A 1 ms deadline against hundreds of repeated base runs over a
        // real dataset: the budget check between groups must fire long
        // before the queue drains, yielding Degraded + Done instead of
        // the full partial stream.
        let synth = datagen::generate_synthetic(&datagen::SyntheticConfig::ds1());
        let attrs: Vec<AttributeId> = synth.dataset.attribute_ids().collect();
        let store = DatasetStore::new(synth.dataset);
        let path = std::env::temp_dir().join(format!(
            "td-shard-worker-deadline-{}.tds",
            std::process::id()
        ));
        store.save(&path).unwrap();
        let repeats = 512;
        let job = ShardJob {
            shard: 0,
            algorithm: "MajorityVote".into(),
            store_path: path.display().to_string(),
            parallelism: Parallelism::Threads(1),
            deadline_ms: Some(1),
            attempt: 1,
            groups: (0..repeats)
                .map(|i| GroupAssignment {
                    group: i,
                    attributes: attrs.clone(),
                })
                .collect(),
        };
        let (code, msgs) = run_job(&job);
        std::fs::remove_file(&path).ok();
        assert_eq!(code, 0);
        let degraded = msgs
            .iter()
            .position(|m| matches!(m, ShardMsg::Degraded(_)))
            .expect("deadline must surface as a Degraded message");
        assert!(degraded < repeats, "degraded before the queue drained");
        assert!(msgs[..degraded]
            .iter()
            .all(|m| matches!(m, ShardMsg::Partial(_))));
        assert!(matches!(msgs[degraded + 1], ShardMsg::Done));
        assert_eq!(msgs.len(), degraded + 2);
    }

    #[test]
    fn chaos_plan_schedules_per_attempt() {
        // "1:FH": shard 1 fails on attempt 1, hangs on attempt 2,
        // succeeds from attempt 3 on; other shards never match.
        assert_eq!(chaos_from_plan("1:FH", 1, 1), ChaosAction::Exit);
        assert_eq!(chaos_from_plan("1:FH", 1, 2), ChaosAction::Hang);
        assert_eq!(chaos_from_plan("1:FH", 1, 3), ChaosAction::None);
        assert_eq!(chaos_from_plan("1:FH", 0, 1), ChaosAction::None);
        assert_eq!(chaos_from_plan("1:FH", 2, 2), ChaosAction::None);
        // Lowercase letters and explicit succeed markers work too.
        assert_eq!(chaos_from_plan("0:sfh", 0, 1), ChaosAction::None);
        assert_eq!(chaos_from_plan("0:sfh", 0, 2), ChaosAction::Exit);
        assert_eq!(chaos_from_plan("0:sfh", 0, 3), ChaosAction::Hang);
        // Pre-retry job lines carry attempt 0; it reads as attempt 1.
        assert_eq!(chaos_from_plan("3:F", 3, 0), ChaosAction::Exit);
        // Malformed plans are inert, never a panic.
        assert_eq!(chaos_from_plan("", 0, 1), ChaosAction::None);
        assert_eq!(chaos_from_plan("nonsense", 0, 1), ChaosAction::None);
        assert_eq!(chaos_from_plan("x:F", 0, 1), ChaosAction::None);
    }
}
