//! The coordinator half: model selection in-process, per-group base
//! runs fanned out to worker processes, exact reassembly.
//!
//! # Why this is bit-identical to `Tdac::run`
//!
//! The coordinator never re-implements any TD-AC phase. It calls
//! [`Tdac::select_model_store`] — the *same* code `Tdac::run` uses for
//! steps 1–3 (reference run, truth-vector matrix, silhouette sweep) —
//! and [`PartitionedModel::assemble`] — the same code as step 5's
//! merge. Only step 4, the embarrassingly parallel per-group base
//! runs, is distributed, and each worker executes the identical
//! `base.discover(&slice.view_of(&group))` call the in-process path
//! would have made:
//!
//! * [`ShardStrategy::ByAttributeGroup`] deals whole groups to shards
//!   (group *i* → shard *i* mod *n*). A shard's slice holds exactly its
//!   groups' claims with the parent's full interner tables, so the
//!   worker's view of a group is claim-for-claim the view the
//!   in-process run would build — exact for **any** base algorithm.
//! * [`ShardStrategy::HashByObject`] splits every group's *objects*
//!   across all shards (FNV-1a of the object's name, the store
//!   checksum hash). Each worker runs every group restricted to its
//!   bucket; per-cell predictions union exactly because the buckets
//!   partition the cells. The global trust vector spans all objects,
//!   so the coordinator re-derives it per group from the unioned
//!   predictions via [`TruthDiscovery::trust_from_predictions`] on the
//!   full dataset — algorithms without that hook (trust not a pure,
//!   cell-local function of the predictions) are rejected up front
//!   with [`ShardError::StrategyUnsupported`] rather than merged
//!   approximately.
//!
//! # Failure semantics
//!
//! Degraded shards are flagged, never silently dropped: a worker that
//! reports [`ShardMsg::Degraded`] aborts the distributed phase and the
//! run returns [`PartitionedModel::into_degraded`] — the reference
//! result, `fallback: true`, the degradation attached — exactly the
//! shape the in-process path produces when its per-group phase is
//! refused. A worker that dies (EOF before `Done`) or reports an
//! internal error is a typed [`ShardError::ShardFailed`] naming the
//! shard; a worker that stalls past its deadline (plus grace) is a
//! typed [`ShardError::ShardTimeout`]. A partial merge is never an
//! option.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use td_algorithms::registry::algorithm_by_name;
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::{AttributeId, Dataset};
use td_obs::{Counter, Observer};
use td_store::{fnv1a, DatasetStore};
use tdac_core::{
    ModelSelection, PartitionedModel, ShardPlan, ShardStrategy, Tdac, TdacConfig, TdacError,
    TdacOutcome,
};

use crate::error::ShardError;
use crate::protocol::{GroupAssignment, ShardJob, ShardMsg};

/// Which shard [`ShardStrategy::HashByObject`] routes an object to:
/// FNV-1a of the object's interned name, modulo the shard count. Name
/// based (not id based) so the routing is stable across datasets that
/// intern the same objects in different orders.
pub fn object_shard(name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fnv1a(name.as_bytes()) % shards.max(1) as u64) as usize
}

/// How the coordinator launches one worker process.
///
/// The default is fork-of-self: the current executable re-invoked with
/// a single `worker` argument, which both `tdc` and `td-verify` route
/// to [`crate::worker_main`]. Tests inject chaos by adding a
/// [`crate::protocol::CHAOS_EXIT_ENV`] entry to `envs` — per command,
/// never via global process environment mutation.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Executable to spawn.
    pub program: PathBuf,
    /// Arguments (default: `["worker"]`).
    pub args: Vec<String>,
    /// Extra environment entries for the child.
    pub envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// Fork-of-self: `current_exe() worker`.
    pub fn current_exe() -> Result<Self, ShardError> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args: vec!["worker".to_string()],
            envs: Vec::new(),
        })
    }

    /// A specific program and argument list.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        WorkerCommand {
            program: program.into(),
            args,
            envs: Vec::new(),
        }
    }

    /// Adds an environment entry for every spawned worker.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// Multi-process TD-AC: the execution engine behind
/// [`ExecutionBackend::Sharded`](tdac_core::ExecutionBackend).
#[derive(Debug, Clone)]
pub struct ShardRunner {
    config: TdacConfig,
    plan: ShardPlan,
    worker: WorkerCommand,
}

impl ShardRunner {
    /// A runner for `config`, which must carry a sharded backend.
    ///
    /// Workers default to fork-of-self (`current_exe() worker`);
    /// override with [`ShardRunner::with_worker`] when the coordinator
    /// binary has no `worker` subcommand.
    pub fn new(config: TdacConfig) -> Result<Self, ShardError> {
        let plan = match config.backend.shard_plan() {
            Some(plan) => plan.clone(),
            None => {
                return Err(TdacError::InvalidConfig(
                    "ShardRunner needs config.backend = ExecutionBackend::Sharded; \
                     for an in-process backend call Tdac::run directly"
                        .to_string(),
                )
                .into())
            }
        };
        plan.validate().map_err(TdacError::InvalidConfig)?;
        let worker = WorkerCommand::current_exe()?;
        Ok(ShardRunner {
            config,
            plan,
            worker,
        })
    }

    /// Replaces the worker launch command.
    pub fn with_worker(mut self, worker: WorkerCommand) -> Self {
        self.worker = worker;
        self
    }

    /// The plan this runner executes.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// [`ShardRunner::run_store`] over a bare dataset.
    pub fn run(&self, algorithm: &str, dataset: &Dataset) -> Result<TdacOutcome, ShardError> {
        self.run_store(algorithm, &DatasetStore::new(dataset.clone()))
    }

    /// Runs TD-AC over `store` with per-group base runs distributed
    /// across worker processes. The outcome is bit-identical to
    /// `Tdac::run_store` under the equivalent in-process config — the
    /// oracle td-verify enforces.
    pub fn run_store(
        &self,
        algorithm: &str,
        store: &DatasetStore,
    ) -> Result<TdacOutcome, ShardError> {
        let base =
            algorithm_by_name(algorithm).ok_or_else(|| ShardError::UnknownAlgorithm(algorithm.to_string()))?;
        let obs = self.config.observer.clone();

        // Steps 1–3 in-process: the same model selection Tdac::run uses.
        let model = match Tdac::new(self.config.clone()).select_model_store(&base, store)? {
            ModelSelection::Complete(outcome) => return Ok(outcome),
            ModelSelection::Partitioned(model) => model,
        };

        // Fail fast before spawning anything: object sharding needs
        // trust to be re-derivable from predictions.
        if self.plan.strategy == ShardStrategy::HashByObject
            && base
                .trust_from_predictions(&store.dataset.view_all(), &model.reference)
                .is_none()
        {
            return Err(ShardError::StrategyUnsupported {
                algorithm: base.name().to_string(),
                strategy: self.plan.strategy,
            });
        }

        let _span = obs.span("shard/distribute");
        self.distribute(&base, store, model, &obs)
    }

    /// Step 4 across processes, step 5 in-process.
    fn distribute(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        store: &DatasetStore,
        model: PartitionedModel,
        obs: &Observer,
    ) -> Result<TdacOutcome, ShardError> {
        let shards = self.plan.shards;
        let groups: Vec<Vec<AttributeId>> = model.partition.groups().to_vec();

        // Deal groups to shards and carve the claim slices.
        let mut assignments: Vec<Vec<GroupAssignment>> = vec![Vec::new(); shards];
        match self.plan.strategy {
            ShardStrategy::ByAttributeGroup => {
                for (gi, attrs) in groups.iter().enumerate() {
                    assignments[gi % shards].push(GroupAssignment {
                        group: gi,
                        attributes: attrs.clone(),
                    });
                }
            }
            ShardStrategy::HashByObject => {
                for slot in assignments.iter_mut() {
                    *slot = groups
                        .iter()
                        .enumerate()
                        .map(|(gi, attrs)| GroupAssignment {
                            group: gi,
                            attributes: attrs.clone(),
                        })
                        .collect();
                }
            }
        }

        let mut slices = SliceFiles::default();
        let mut workers: Vec<WorkerHandle> = Vec::new();
        let (tx, rx) = mpsc::channel::<Event>();

        let spawn_result = (|| -> Result<(), ShardError> {
            for (shard, jobs) in assignments.iter().enumerate() {
                if jobs.is_empty() {
                    // More shards than groups under ByAttributeGroup:
                    // nothing for this worker to do, so don't pay for
                    // the process.
                    continue;
                }
                let slice = self.carve(store, shard, jobs)?;
                let path = slices.alloc(shard);
                slice.save(&path)?;
                let job = ShardJob {
                    shard,
                    algorithm: base.name().to_string(),
                    store_path: path.display().to_string(),
                    parallelism: self.plan.worker_parallelism,
                    deadline_ms: self.plan.worker_deadline_ms,
                    groups: jobs.clone(),
                };
                workers.push(self.spawn(shard, &job, tx.clone())?);
                obs.incr(Counter::ShardsSpawned, 1);
            }
            Ok(())
        })();
        drop(tx);
        if let Err(e) = spawn_result {
            kill_all(&mut workers);
            return Err(e);
        }

        let merged = self.collect(&mut workers, &rx, &groups, store, base, model, obs);
        kill_all(&mut workers); // no-op for cleanly exited workers; reaps zombies
        merged
    }

    /// The claim subset shard `shard` may see, as a page-free store
    /// slice keeping the parent's interner tables.
    fn carve(
        &self,
        store: &DatasetStore,
        shard: usize,
        jobs: &[GroupAssignment],
    ) -> Result<DatasetStore, ShardError> {
        match self.plan.strategy {
            ShardStrategy::ByAttributeGroup => {
                let mine: HashMap<AttributeId, ()> = jobs
                    .iter()
                    .flat_map(|j| j.attributes.iter().map(|&a| (a, ())))
                    .collect();
                Ok(store.subset_where(|c| mine.contains_key(&c.attribute))?)
            }
            ShardStrategy::HashByObject => {
                let n = self.plan.shards;
                let dataset = &store.dataset;
                Ok(store
                    .subset_where(|c| object_shard(dataset.object_name(c.object), n) == shard)?)
            }
        }
    }

    fn spawn(
        &self,
        shard: usize,
        job: &ShardJob,
        tx: mpsc::Sender<Event>,
    ) -> Result<WorkerHandle, ShardError> {
        let mut cmd = Command::new(&self.worker.program);
        cmd.args(&self.worker.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &self.worker.envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        let line = serde_json::to_string(job).map_err(|e| ShardError::Protocol {
            shard,
            detail: format!("encoding job: {e}"),
        })?;
        {
            let mut stdin = child.stdin.take().expect("stdin piped");
            writeln!(stdin, "{line}")?;
        } // close stdin: the worker reads exactly one line
        let stdout = child.stdout.take().expect("stdout piped");
        let reader = std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout).lines();
            loop {
                match lines.next() {
                    Some(Ok(line)) => {
                        let event = match serde_json::from_str::<ShardMsg>(&line) {
                            Ok(msg) => Event::Msg(shard, msg),
                            Err(e) => Event::Bad(shard, format!("unparseable line: {e}")),
                        };
                        if tx.send(event).is_err() {
                            return; // coordinator gave up
                        }
                    }
                    Some(Err(e)) => {
                        let _ = tx.send(Event::Bad(shard, format!("reading stdout: {e}")));
                        return;
                    }
                    None => {
                        let _ = tx.send(Event::Eof(shard));
                        return;
                    }
                }
            }
        });
        Ok(WorkerHandle {
            shard,
            child,
            reader: Some(reader),
        })
    }

    /// Drains worker events until every spawned shard reports `Done`,
    /// then reassembles the outcome.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        workers: &mut Vec<WorkerHandle>,
        rx: &mpsc::Receiver<Event>,
        groups: &[Vec<AttributeId>],
        store: &DatasetStore,
        base: &(dyn TruthDiscovery + Sync),
        model: PartitionedModel,
        obs: &Observer,
    ) -> Result<TdacOutcome, ShardError> {
        // Coordinator-side stall guard: the worker polices its own
        // deadline at group boundaries, so give it the deadline plus
        // generous grace for slice loading and one overshooting base
        // run before declaring it hung.
        let patience = self
            .plan
            .worker_deadline_ms
            .map(|ms| Duration::from_millis(ms.saturating_mul(4).max(ms.saturating_add(5_000))));

        let mut done: HashMap<usize, bool> =
            workers.iter().map(|w| (w.shard, false)).collect();
        let mut pending = done.len();
        // ByAttributeGroup: one partial per group, straight into its
        // slot. HashByObject: per-group prediction unions accumulated
        // across shards; trust re-derived after the fan-in.
        let mut partials: Vec<Option<TruthResult>> = vec![None; groups.len()];

        while pending > 0 {
            let event = match patience {
                Some(limit) => match rx.recv_timeout(limit) {
                    Ok(event) => event,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        let shard = stalled_shard(&done);
                        kill_all(workers);
                        obs.incr(Counter::ShardFailures, 1);
                        return Err(ShardError::ShardTimeout {
                            shard,
                            waited_ms: limit.as_millis() as u64,
                        });
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        let shard = stalled_shard(&done);
                        kill_all(workers);
                        return Err(ShardError::Protocol {
                            shard,
                            detail: "event channel closed before completion".to_string(),
                        });
                    }
                },
                None => match rx.recv() {
                    Ok(event) => event,
                    Err(_) => {
                        let shard = stalled_shard(&done);
                        kill_all(workers);
                        return Err(ShardError::Protocol {
                            shard,
                            detail: "event channel closed before completion".to_string(),
                        });
                    }
                },
            };
            match event {
                Event::Msg(shard, ShardMsg::Partial(p)) => {
                    if p.group >= groups.len() {
                        kill_all(workers);
                        return Err(ShardError::Protocol {
                            shard,
                            detail: format!(
                                "partial for group {} but the partition has {}",
                                p.group,
                                groups.len()
                            ),
                        });
                    }
                    obs.incr(Counter::ShardPartials, 1);
                    match self.plan.strategy {
                        ShardStrategy::ByAttributeGroup => {
                            partials[p.group] = Some(p.result);
                        }
                        ShardStrategy::HashByObject => {
                            let acc = partials[p.group].get_or_insert_with(TruthResult::default);
                            for (o, a, v, c) in p.result.iter() {
                                acc.set_prediction(o, a, v, c);
                            }
                            acc.iterations = acc.iterations.max(p.result.iterations);
                        }
                    }
                }
                Event::Msg(_, ShardMsg::Degraded(degradation)) => {
                    // One shard over budget degrades the whole run —
                    // flagged, never a thinner merge.
                    kill_all(workers);
                    obs.incr(Counter::DegradedRuns, 1);
                    return Ok(model.into_degraded(degradation));
                }
                Event::Msg(shard, ShardMsg::Failed(f)) => {
                    kill_all(workers);
                    obs.incr(Counter::ShardFailures, 1);
                    return Err(ShardError::ShardFailed {
                        shard,
                        detail: format!("{}: {}", f.phase, f.detail),
                    });
                }
                Event::Msg(shard, ShardMsg::Done) => {
                    if let Some(flag) = done.get_mut(&shard) {
                        if !*flag {
                            *flag = true;
                            pending -= 1;
                        }
                    }
                }
                Event::Eof(shard) => {
                    if !done.get(&shard).copied().unwrap_or(true) {
                        kill_all(workers);
                        obs.incr(Counter::ShardFailures, 1);
                        return Err(ShardError::ShardFailed {
                            shard,
                            detail: "worker exited before reporting completion".to_string(),
                        });
                    }
                }
                Event::Bad(shard, detail) => {
                    kill_all(workers);
                    obs.incr(Counter::ShardFailures, 1);
                    return Err(ShardError::Protocol { shard, detail });
                }
            }
        }

        // Every shard reported Done; reassemble in group order.
        let mut ordered: Vec<TruthResult> = Vec::with_capacity(groups.len());
        for (gi, slot) in partials.into_iter().enumerate() {
            let mut partial = slot.ok_or_else(|| ShardError::Protocol {
                shard: 0,
                detail: format!("no partial received for group {gi}"),
            })?;
            if self.plan.strategy == ShardStrategy::HashByObject {
                // The global trust vector spans every object, so it is
                // re-derived from the unioned predictions over the FULL
                // dataset's view of the group — bit-exact per the
                // trust_from_predictions contract.
                let view = store.dataset.view_of(&groups[gi]);
                partial.source_trust =
                    base.trust_from_predictions(&view, &partial).ok_or_else(|| {
                        ShardError::StrategyUnsupported {
                            algorithm: base.name().to_string(),
                            strategy: self.plan.strategy,
                        }
                    })?;
            }
            ordered.push(partial);
        }
        Ok(model.assemble(&ordered, obs))
    }
}

enum Event {
    Msg(usize, ShardMsg),
    Bad(usize, String),
    Eof(usize),
}

struct WorkerHandle {
    shard: usize,
    child: Child,
    reader: Option<std::thread::JoinHandle<()>>,
}

fn kill_all(workers: &mut Vec<WorkerHandle>) {
    for w in workers.iter_mut() {
        let _ = w.child.kill();
        let _ = w.child.wait();
        if let Some(reader) = w.reader.take() {
            let _ = reader.join();
        }
    }
}

fn stalled_shard(done: &HashMap<usize, bool>) -> usize {
    done.iter()
        .filter(|(_, &d)| !d)
        .map(|(&s, _)| s)
        .min()
        .unwrap_or(0)
}

/// Temp-file book-keeping for the `.tds` slices, removed on drop.
/// Names are collision-free without a tempfile dependency: process id
/// plus a process-global counter.
#[derive(Default)]
struct SliceFiles {
    paths: Vec<PathBuf>,
}

static SLICE_SEQ: AtomicU64 = AtomicU64::new(0);

impl SliceFiles {
    fn alloc(&mut self, shard: usize) -> PathBuf {
        let seq = SLICE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "td-shard-{}-{}-s{}.tds",
            std::process::id(),
            seq,
            shard
        ));
        self.paths.push(path.clone());
        path
    }
}

impl Drop for SliceFiles {
    fn drop(&mut self) {
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_shard_is_stable_and_in_range() {
        for n in 1..9 {
            for name in ["o1", "o2", "object-with-long-name", ""] {
                let s = object_shard(name, n);
                assert!(s < n);
                assert_eq!(s, object_shard(name, n), "stable across calls");
            }
        }
        // Regression pin: the routing is FNV-1a of the name, the same
        // hash the store's checksums use.
        assert_eq!(
            object_shard("o1", 4),
            (fnv1a(b"o1") % 4) as usize
        );
    }

    #[test]
    fn runner_rejects_in_process_backends() {
        let config = TdacConfig::default();
        assert!(!config.backend.is_sharded());
        let err = ShardRunner::new(config).unwrap_err();
        assert!(matches!(err, ShardError::Tdac(TdacError::InvalidConfig(_))));
    }
}
