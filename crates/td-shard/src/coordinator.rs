//! The coordinator half: model selection in-process, per-group base
//! runs fanned out to worker processes, exact reassembly.
//!
//! # Why this is bit-identical to `Tdac::run`
//!
//! The coordinator never re-implements any TD-AC phase. It calls
//! [`Tdac::select_model_store`] — the *same* code `Tdac::run` uses for
//! steps 1–3 (reference run, truth-vector matrix, silhouette sweep) —
//! and [`PartitionedModel::assemble`] — the same code as step 5's
//! merge. Only step 4, the embarrassingly parallel per-group base
//! runs, is distributed, and each worker executes the identical
//! `base.discover(&slice.view_of(&group))` call the in-process path
//! would have made:
//!
//! * [`ShardStrategy::ByAttributeGroup`] deals whole groups to shards
//!   (group *i* → shard *i* mod *n*). A shard's slice holds exactly its
//!   groups' claims with the parent's full interner tables, so the
//!   worker's view of a group is claim-for-claim the view the
//!   in-process run would build — exact for **any** base algorithm.
//! * [`ShardStrategy::HashByObject`] splits every group's *objects*
//!   across all shards (FNV-1a of the object's name, the store
//!   checksum hash). Each worker runs every group restricted to its
//!   bucket; per-cell predictions union exactly because the buckets
//!   partition the cells. The global trust vector spans all objects,
//!   so the coordinator re-derives it per group from the unioned
//!   predictions via [`TruthDiscovery::trust_from_predictions`] on the
//!   full dataset — algorithms without that hook (trust not a pure,
//!   cell-local function of the predictions) are rejected up front
//!   with [`ShardError::StrategyUnsupported`] rather than merged
//!   approximately.
//!
//! # Failure semantics: the retry ladder
//!
//! A worker *fault* — death before `Done`, unparseable output, or no
//! progress within the coordinator's patience — climbs a ladder
//! governed by the plan's [`RetryPolicy`](tdac_core::RetryPolicy):
//!
//! 1. **Fail-fast** (`max_attempts == 1`, the default): the first
//!    fault aborts the run with the matching typed error —
//!    [`ShardError::ShardFailed`], [`ShardError::Protocol`], or
//!    [`ShardError::ShardTimeout`] — exactly as before the supervisor
//!    existed.
//! 2. **Retry** (`max_attempts > 1`): only the faulted worker is
//!    killed; its buffered partials are discarded and a fresh worker
//!    re-spawns from the shard's persisted `.tds` slice after a
//!    deterministic capped-exponential backoff. Because partials are
//!    keyed by group and replacement is whole-shard, the eventual
//!    merge is bit-identical to a clean run by construction.
//! 3. **Fallback**: when attempts exhaust, the coordinator runs the
//!    shard's jobs *in-process* through the same worker group loop
//!    (chaos injection explicitly disabled) and flags the outcome with
//!    [`DegradationReason::ShardFallback`]. The merge is complete —
//!    never thinned — the flag records that the execution path was not
//!    the configured one.
//!
//! A worker that *reports* [`ShardMsg::Degraded`] is not a fault: its
//! budget fired deterministically, retrying would burn the same budget
//! again, so the run returns [`PartitionedModel::into_degraded`] — the
//! reference result, `fallback: true`, the degradation attached —
//! exactly the shape the in-process path produces when its per-group
//! phase is refused. A partial merge is never an option on any rung.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use td_algorithms::registry::algorithm_by_name;
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::{AttributeId, Dataset};
use td_obs::{Counter, Degradation, DegradationReason, Observer, ShardFault, WorkCompleted};
use td_store::{fnv1a, DatasetStore};
use tdac_core::{
    ModelSelection, PartitionedModel, ShardPlan, ShardStrategy, Tdac, TdacConfig, TdacError,
    TdacOutcome,
};

use crate::error::ShardError;
use crate::protocol::{GroupAssignment, GroupPartial, ShardJob, ShardMsg};
use crate::worker::ChaosAction;

/// Which shard [`ShardStrategy::HashByObject`] routes an object to:
/// FNV-1a of the object's interned name, modulo the shard count. Name
/// based (not id based) so the routing is stable across datasets that
/// intern the same objects in different orders.
pub fn object_shard(name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fnv1a(name.as_bytes()) % shards.max(1) as u64) as usize
}

/// How the coordinator launches one worker process.
///
/// The default is fork-of-self: the current executable re-invoked with
/// a single `worker` argument, which both `tdc` and `td-verify` route
/// to [`crate::worker_main`]. Tests inject chaos by adding a
/// [`crate::protocol::CHAOS_EXIT_ENV`] or
/// [`crate::protocol::CHAOS_PLAN_ENV`] entry to `envs` — per command,
/// never via global process environment mutation.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Executable to spawn.
    pub program: PathBuf,
    /// Arguments (default: `["worker"]`).
    pub args: Vec<String>,
    /// Extra environment entries for the child.
    pub envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// Fork-of-self: `current_exe() worker`.
    pub fn current_exe() -> Result<Self, ShardError> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args: vec!["worker".to_string()],
            envs: Vec::new(),
        })
    }

    /// A specific program and argument list.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        WorkerCommand {
            program: program.into(),
            args,
            envs: Vec::new(),
        }
    }

    /// Adds an environment entry for every spawned worker.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// Multi-process TD-AC: the execution engine behind
/// [`ExecutionBackend::Sharded`](tdac_core::ExecutionBackend).
#[derive(Debug, Clone)]
pub struct ShardRunner {
    config: TdacConfig,
    plan: ShardPlan,
    worker: WorkerCommand,
}

impl ShardRunner {
    /// A runner for `config`, which must carry a sharded backend.
    ///
    /// Workers default to fork-of-self (`current_exe() worker`);
    /// override with [`ShardRunner::with_worker`] when the coordinator
    /// binary has no `worker` subcommand.
    pub fn new(config: TdacConfig) -> Result<Self, ShardError> {
        let plan = match config.backend.shard_plan() {
            Some(plan) => plan.clone(),
            None => {
                return Err(TdacError::InvalidConfig(
                    "ShardRunner needs config.backend = ExecutionBackend::Sharded; \
                     for an in-process backend call Tdac::run directly"
                        .to_string(),
                )
                .into())
            }
        };
        plan.validate().map_err(TdacError::InvalidConfig)?;
        let worker = WorkerCommand::current_exe()?;
        Ok(ShardRunner {
            config,
            plan,
            worker,
        })
    }

    /// Replaces the worker launch command.
    pub fn with_worker(mut self, worker: WorkerCommand) -> Self {
        self.worker = worker;
        self
    }

    /// The plan this runner executes.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// [`ShardRunner::run_store`] over a bare dataset.
    pub fn run(&self, algorithm: &str, dataset: &Dataset) -> Result<TdacOutcome, ShardError> {
        self.run_store(algorithm, &DatasetStore::new(dataset.clone()))
    }

    /// Runs TD-AC over `store` with per-group base runs distributed
    /// across worker processes. The outcome is bit-identical to
    /// `Tdac::run_store` under the equivalent in-process config — the
    /// oracle td-verify enforces.
    pub fn run_store(
        &self,
        algorithm: &str,
        store: &DatasetStore,
    ) -> Result<TdacOutcome, ShardError> {
        let base =
            algorithm_by_name(algorithm).ok_or_else(|| ShardError::UnknownAlgorithm(algorithm.to_string()))?;
        let obs = self.config.observer.clone();

        // Steps 1–3 in-process: the same model selection Tdac::run uses.
        let model = match Tdac::new(self.config.clone()).select_model_store(&base, store)? {
            ModelSelection::Complete(outcome) => return Ok(outcome),
            ModelSelection::Partitioned(model) => model,
        };

        // Fail fast before spawning anything: object sharding needs
        // trust to be re-derivable from predictions.
        if self.plan.strategy == ShardStrategy::HashByObject
            && base
                .trust_from_predictions(&store.dataset.view_all(), &model.reference)
                .is_none()
        {
            return Err(ShardError::StrategyUnsupported {
                algorithm: base.name().to_string(),
                strategy: self.plan.strategy,
            });
        }

        let _span = obs.span("shard/distribute");
        self.distribute(&base, store, model, &obs)
    }

    /// Step 4 across processes, step 5 in-process.
    fn distribute(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        store: &DatasetStore,
        model: PartitionedModel,
        obs: &Observer,
    ) -> Result<TdacOutcome, ShardError> {
        let shards = self.plan.shards;
        let groups: Vec<Vec<AttributeId>> = model.partition.groups().to_vec();

        // Deal groups to shards and carve the claim slices.
        let mut assignments: Vec<Vec<GroupAssignment>> = vec![Vec::new(); shards];
        match self.plan.strategy {
            ShardStrategy::ByAttributeGroup => {
                for (gi, attrs) in groups.iter().enumerate() {
                    assignments[gi % shards].push(GroupAssignment {
                        group: gi,
                        attributes: attrs.clone(),
                    });
                }
            }
            ShardStrategy::HashByObject => {
                for slot in assignments.iter_mut() {
                    *slot = groups
                        .iter()
                        .enumerate()
                        .map(|(gi, attrs)| GroupAssignment {
                            group: gi,
                            attributes: attrs.clone(),
                        })
                        .collect();
                }
            }
        }

        // The RAII guard owns every slice file from the moment its path
        // is allocated: any early return (or panic) below runs its Drop
        // and removes whatever was written. Slices are retained while a
        // shard might still need them (re-spawn, fallback) and released
        // eagerly the moment the shard completes.
        let mut slices = SliceFiles::default();
        let (tx, rx) = mpsc::channel::<Event>();
        let mut slots: BTreeMap<usize, Slot> = BTreeMap::new();
        let mut workers: HashMap<usize, WorkerHandle> = HashMap::new();

        let spawn_result = (|| -> Result<(), ShardError> {
            for (shard, jobs) in assignments.iter().enumerate() {
                if jobs.is_empty() {
                    // More shards than groups under ByAttributeGroup:
                    // nothing for this worker to do, so don't pay for
                    // the process.
                    continue;
                }
                let slice = self.carve(store, shard, jobs)?;
                let path = slices.alloc(shard);
                slice.save(&path)?;
                let job = ShardJob {
                    shard,
                    algorithm: base.name().to_string(),
                    store_path: path.display().to_string(),
                    parallelism: self.plan.worker_parallelism,
                    deadline_ms: self.plan.worker_deadline_ms,
                    attempt: 1,
                    groups: jobs.clone(),
                };
                workers.insert(shard, self.spawn(shard, &job, tx.clone())?);
                obs.incr(Counter::ShardsSpawned, 1);
                slots.insert(
                    shard,
                    Slot {
                        job,
                        attempt: 1,
                        state: SlotState::Running,
                        partials: Vec::new(),
                        last_event: Instant::now(),
                    },
                );
            }
            Ok(())
        })();
        if let Err(e) = spawn_result {
            kill_all(&mut workers);
            return Err(e);
        }

        let mut sup = Supervisor {
            runner: self,
            groups: &groups,
            store,
            base,
            obs,
            tx,
            rx,
            slots,
            workers,
            slices: &mut slices,
            fallbacks: Vec::new(),
        };
        let driven = sup.drive();
        kill_all(&mut sup.workers); // no-op for cleanly exited workers; reaps zombies
        match driven {
            Err(e) => Err(e),
            Ok(Some(degradation)) => {
                // One shard over budget degrades the whole run —
                // flagged, never a thinner merge.
                obs.incr(Counter::DegradedRuns, 1);
                Ok(model.into_degraded(degradation))
            }
            Ok(None) => sup.fold(model),
        }
    }

    /// The claim subset shard `shard` may see, as a page-free store
    /// slice keeping the parent's interner tables.
    fn carve(
        &self,
        store: &DatasetStore,
        shard: usize,
        jobs: &[GroupAssignment],
    ) -> Result<DatasetStore, ShardError> {
        match self.plan.strategy {
            ShardStrategy::ByAttributeGroup => {
                let mine: HashMap<AttributeId, ()> = jobs
                    .iter()
                    .flat_map(|j| j.attributes.iter().map(|&a| (a, ())))
                    .collect();
                Ok(store.subset_where(|c| mine.contains_key(&c.attribute))?)
            }
            ShardStrategy::HashByObject => {
                let n = self.plan.shards;
                let dataset = &store.dataset;
                Ok(store
                    .subset_where(|c| object_shard(dataset.object_name(c.object), n) == shard)?)
            }
        }
    }

    fn spawn(
        &self,
        shard: usize,
        job: &ShardJob,
        tx: mpsc::Sender<Event>,
    ) -> Result<WorkerHandle, ShardError> {
        let mut cmd = Command::new(&self.worker.program);
        cmd.args(&self.worker.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &self.worker.envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        let line = serde_json::to_string(job).map_err(|e| ShardError::Protocol {
            shard,
            detail: format!("encoding job: {e}"),
        })?;
        {
            let mut stdin = child.stdin.take().expect("stdin piped");
            writeln!(stdin, "{line}")?;
        } // close stdin: the worker reads exactly one line
        let stdout = child.stdout.take().expect("stdout piped");
        // Every event is tagged with the attempt it belongs to, so the
        // supervisor can discard messages a killed predecessor left in
        // flight after a re-spawn.
        let attempt = job.attempt;
        let reader = std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout).lines();
            loop {
                match lines.next() {
                    Some(Ok(line)) => {
                        let event = match serde_json::from_str::<ShardMsg>(&line) {
                            Ok(msg) => Event::Msg(shard, attempt, msg),
                            Err(e) => Event::Bad(shard, attempt, format!("unparseable line: {e}")),
                        };
                        if tx.send(event).is_err() {
                            return; // coordinator gave up
                        }
                    }
                    Some(Err(e)) => {
                        let _ = tx.send(Event::Bad(shard, attempt, format!("reading stdout: {e}")));
                        return;
                    }
                    None => {
                        let _ = tx.send(Event::Eof(shard, attempt));
                        return;
                    }
                }
            }
        });
        Ok(WorkerHandle {
            child,
            reader: Some(reader),
        })
    }
}

/// A worker fault the supervisor must answer: the three retryable
/// event shapes, each mapped to its typed fail-fast error.
enum Fault {
    /// Worker died (EOF before `Done`) or reported an internal error.
    Died(String),
    /// Worker wrote something the protocol cannot parse.
    Garbled(String),
    /// No event from the worker within the coordinator's patience.
    Stalled(u64),
}

impl Fault {
    fn describe(&self) -> String {
        match self {
            Fault::Died(detail) => detail.clone(),
            Fault::Garbled(detail) => format!("protocol violation: {detail}"),
            Fault::Stalled(waited_ms) => format!("no progress within {waited_ms} ms"),
        }
    }

    fn into_error(self, shard: usize) -> ShardError {
        match self {
            Fault::Died(detail) => ShardError::ShardFailed { shard, detail },
            Fault::Garbled(detail) => ShardError::Protocol { shard, detail },
            Fault::Stalled(waited_ms) => ShardError::ShardTimeout { shard, waited_ms },
        }
    }
}

/// Per-shard lifecycle: where one shard currently sits on the retry
/// ladder.
enum SlotState {
    /// A worker process is (believed to be) executing this attempt.
    Running,
    /// Faulted; the next attempt spawns once the backoff deadline
    /// passes.
    Backoff(Instant),
    /// Reported `Done`; its partials are final.
    Done,
    /// Attempts exhausted; its partials came from the in-process
    /// fallback.
    Fallback,
}

/// One shard's supervision record.
struct Slot {
    /// The job template; `attempt` is stamped per spawn.
    job: ShardJob,
    /// Current (or next, while in backoff) attempt number, 1-based.
    attempt: u32,
    state: SlotState,
    /// Partials buffered until the shard completes — discarded whole
    /// on a fault, which is what keeps retried merges exact.
    partials: Vec<GroupPartial>,
    /// Last activity, for per-shard stall detection.
    last_event: Instant,
}

/// The event loop state: per-shard slots, live worker handles, and the
/// channel both ends of the reader threads share. Owns the retry
/// ladder; `drive` runs it to completion, `fold` reassembles.
struct Supervisor<'a> {
    runner: &'a ShardRunner,
    groups: &'a [Vec<AttributeId>],
    store: &'a DatasetStore,
    base: &'a (dyn TruthDiscovery + Sync),
    obs: &'a Observer,
    /// Kept alive for re-spawns; reader threads hold clones.
    tx: mpsc::Sender<Event>,
    rx: mpsc::Receiver<Event>,
    slots: BTreeMap<usize, Slot>,
    workers: HashMap<usize, WorkerHandle>,
    slices: &'a mut SliceFiles,
    /// `(shard, last fault detail)` for every shard that fell back.
    fallbacks: Vec<(usize, String)>,
}

impl Supervisor<'_> {
    /// How long a worker may go silent before it is declared stalled:
    /// the deadline plus the plan's explicit grace when set, otherwise
    /// the legacy formula (4× the deadline, min deadline + 5 s). No
    /// deadline means unbounded trust, as before.
    fn patience(&self) -> Option<Duration> {
        let plan = &self.runner.plan;
        plan.worker_deadline_ms.map(|ms| {
            Duration::from_millis(match plan.worker_grace_ms {
                Some(grace) => ms.saturating_add(grace),
                None => ms.saturating_mul(4).max(ms.saturating_add(5_000)),
            })
        })
    }

    fn pending(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s.state, SlotState::Running | SlotState::Backoff(_)))
            .count()
    }

    /// Whether `(shard, attempt)` identifies the *current* attempt of a
    /// running slot — anything else is a stale echo of a killed worker
    /// (or a completed shard's EOF) and must be ignored.
    fn current(&self, shard: usize, attempt: u32) -> bool {
        self.slots
            .get(&shard)
            .map(|s| matches!(s.state, SlotState::Running) && s.attempt == attempt.max(1))
            .unwrap_or(false)
    }

    /// Runs the event loop until every shard is `Done` or `Fallback`.
    /// `Ok(Some(d))` is the terminal worker-degradation outcome;
    /// `Ok(None)` means all partials are buffered and ready to fold.
    fn drive(&mut self) -> Result<Option<Degradation>, ShardError> {
        let patience = self.patience();
        while self.pending() > 0 {
            let now = Instant::now();

            // Backoff deadlines that came due: re-spawn those shards.
            let due: Vec<usize> = self
                .slots
                .iter()
                .filter_map(|(&s, slot)| match slot.state {
                    SlotState::Backoff(until) if until <= now => Some(s),
                    _ => None,
                })
                .collect();
            for shard in due {
                if let Some(d) = self.respawn(shard)? {
                    return Ok(Some(d));
                }
            }

            // Stall detection, per shard: only running workers are on
            // the clock, and every event from the current attempt
            // resets that shard's clock.
            if let Some(limit) = patience {
                let stalled: Vec<(usize, u64)> = self
                    .slots
                    .iter()
                    .filter_map(|(&s, slot)| {
                        let waited = now.saturating_duration_since(slot.last_event);
                        (matches!(slot.state, SlotState::Running) && waited >= limit)
                            .then(|| (s, waited.as_millis() as u64))
                    })
                    .collect();
                for (shard, waited_ms) in stalled {
                    if let Some(d) = self.fault(shard, Fault::Stalled(waited_ms))? {
                        return Ok(Some(d));
                    }
                }
            }
            if self.pending() == 0 {
                break;
            }

            // Sleep until the earliest deadline (a backoff expiry or a
            // running shard's patience), or indefinitely when nothing
            // is on a clock.
            let wake: Option<Instant> = self
                .slots
                .values()
                .filter_map(|slot| match slot.state {
                    SlotState::Backoff(until) => Some(until),
                    SlotState::Running => patience.map(|p| slot.last_event + p),
                    _ => None,
                })
                .min();
            let event = match wake {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(timeout) {
                        Ok(event) => Some(event),
                        Err(mpsc::RecvTimeoutError::Timeout) => None, // re-check clocks
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            return Err(self.channel_closed())
                        }
                    }
                }
                None => match self.rx.recv() {
                    Ok(event) => Some(event),
                    Err(_) => return Err(self.channel_closed()),
                },
            };
            if let Some(event) = event {
                if let Some(d) = self.handle(event)? {
                    return Ok(Some(d));
                }
            }
        }
        Ok(None)
    }

    fn handle(&mut self, event: Event) -> Result<Option<Degradation>, ShardError> {
        match event {
            Event::Msg(shard, attempt, msg) => {
                if !self.current(shard, attempt) {
                    return Ok(None); // stale echo from a killed worker
                }
                match msg {
                    ShardMsg::Partial(p) => {
                        if p.group >= self.groups.len() {
                            return self.fault(
                                shard,
                                Fault::Garbled(format!(
                                    "partial for group {} but the partition has {}",
                                    p.group,
                                    self.groups.len()
                                )),
                            );
                        }
                        self.obs.incr(Counter::ShardPartials, 1);
                        let slot = self.slots.get_mut(&shard).expect("current slot");
                        slot.partials.push(p);
                        slot.last_event = Instant::now();
                        Ok(None)
                    }
                    // Terminal by design: the worker's budget fired
                    // deterministically; a retry would burn the same
                    // budget again.
                    ShardMsg::Degraded(degradation) => Ok(Some(degradation)),
                    ShardMsg::Failed(f) => self.fault(
                        shard,
                        Fault::Died(format!("{}: {}", f.phase, f.detail)),
                    ),
                    ShardMsg::Done => {
                        let slot = self.slots.get_mut(&shard).expect("current slot");
                        slot.state = SlotState::Done;
                        // The slice can go the moment its shard is
                        // final — nothing will re-read it.
                        self.slices.release(shard);
                        Ok(None)
                    }
                }
            }
            Event::Eof(shard, attempt) => {
                if !self.current(shard, attempt) {
                    return Ok(None); // EOF after Done, or a stale reader
                }
                self.fault(
                    shard,
                    Fault::Died("worker exited before reporting completion".to_string()),
                )
            }
            Event::Bad(shard, attempt, detail) => {
                if !self.current(shard, attempt) {
                    return Ok(None);
                }
                self.fault(shard, Fault::Garbled(detail))
            }
        }
    }

    /// One rung up the ladder for `shard`: abort (fail-fast), schedule
    /// a retry, or run the in-process fallback.
    fn fault(&mut self, shard: usize, fault: Fault) -> Result<Option<Degradation>, ShardError> {
        self.obs.incr(Counter::ShardFailures, 1);
        let retry = self.runner.plan.retry;
        if retry.is_fail_fast() {
            return Err(fault.into_error(shard));
        }
        // Kill only this worker; everyone else keeps streaming.
        kill_one(self.workers.remove(&shard));
        let detail = fault.describe();
        let slot = self.slots.get_mut(&shard).expect("faulted slot");
        // Whole-shard discard: partial replacement is what keeps the
        // retried merge bit-identical.
        slot.partials.clear();
        if slot.attempt < retry.max_attempts {
            slot.attempt += 1;
            let delay = retry.backoff_delay_ms(shard, slot.attempt);
            slot.state = SlotState::Backoff(Instant::now() + Duration::from_millis(delay));
            self.obs.incr(Counter::ShardRetries, 1);
            Ok(None)
        } else {
            self.fallback(shard, detail)
        }
    }

    /// Spawns the next attempt of a shard whose backoff expired. A
    /// spawn error is itself a fault and consumes an attempt.
    fn respawn(&mut self, shard: usize) -> Result<Option<Degradation>, ShardError> {
        let slot = self.slots.get_mut(&shard).expect("backoff slot");
        let mut job = slot.job.clone();
        job.attempt = slot.attempt;
        slot.state = SlotState::Running;
        slot.last_event = Instant::now();
        match self.runner.spawn(shard, &job, self.tx.clone()) {
            Ok(handle) => {
                self.workers.insert(shard, handle);
                self.obs.incr(Counter::ShardsSpawned, 1);
                self.obs.incr(Counter::ShardRespawns, 1);
                Ok(None)
            }
            Err(e) => self.fault(shard, Fault::Died(format!("re-spawn failed: {e}"))),
        }
    }

    /// The last rung: run the shard's jobs in-process through the same
    /// worker group loop, chaos explicitly disabled (the coordinator's
    /// own environment may carry the chaos variables its children
    /// inherit). Degrade, never die — and never thin the merge.
    fn fallback(&mut self, shard: usize, detail: String) -> Result<Option<Degradation>, ShardError> {
        let _span = self.obs.span("shard/fallback");
        let slot = self.slots.get_mut(&shard).expect("fallback slot");
        let mut job = slot.job.clone();
        job.attempt = slot.attempt;
        let mut buf: Vec<u8> = Vec::new();
        let code = crate::worker::execute(&job, ChaosAction::None, &mut buf);
        let text = String::from_utf8_lossy(&buf);

        let mut partials: Vec<GroupPartial> = Vec::new();
        let mut degraded: Option<Degradation> = None;
        let mut done = false;
        for line in text.lines() {
            match serde_json::from_str::<ShardMsg>(line) {
                Ok(ShardMsg::Partial(p)) => {
                    if p.group >= self.groups.len() {
                        return Err(ShardError::Protocol {
                            shard,
                            detail: format!(
                                "fallback partial for group {} but the partition has {}",
                                p.group,
                                self.groups.len()
                            ),
                        });
                    }
                    partials.push(p);
                }
                Ok(ShardMsg::Degraded(d)) => degraded = Some(d),
                Ok(ShardMsg::Failed(f)) => {
                    return Err(ShardError::ShardFailed {
                        shard,
                        detail: format!(
                            "in-process fallback failed after {} worker attempt(s) — {}: {}",
                            self.runner.plan.retry.max_attempts, f.phase, f.detail
                        ),
                    })
                }
                Ok(ShardMsg::Done) => done = true,
                Err(e) => {
                    return Err(ShardError::Protocol {
                        shard,
                        detail: format!("in-process fallback emitted an unparseable line: {e}"),
                    })
                }
            }
        }
        if let Some(d) = degraded {
            // The shard's own budget fired during the fallback — the
            // same terminal degradation a worker would have reported.
            return Ok(Some(d));
        }
        if !done || code != 0 {
            return Err(ShardError::ShardFailed {
                shard,
                detail: format!(
                    "in-process fallback exited {code} without completing after {} worker attempt(s)",
                    self.runner.plan.retry.max_attempts
                ),
            });
        }
        self.obs.incr(Counter::ShardPartials, partials.len() as u64);
        self.obs.incr(Counter::ShardFallbacks, 1);
        let slot = self.slots.get_mut(&shard).expect("fallback slot");
        slot.partials = partials;
        slot.state = SlotState::Fallback;
        self.slices.release(shard);
        self.fallbacks.push((shard, detail));
        // The fallback ran on the coordinator's thread and may have
        // taken a while; don't let that time count against the other
        // workers' patience.
        let now = Instant::now();
        for s in self.slots.values_mut() {
            if matches!(s.state, SlotState::Running) {
                s.last_event = now;
            }
        }
        Ok(None)
    }

    fn channel_closed(&self) -> ShardError {
        let shard = self
            .slots
            .iter()
            .find(|(_, s)| matches!(s.state, SlotState::Running | SlotState::Backoff(_)))
            .map(|(&s, _)| s)
            .unwrap_or(0);
        ShardError::Protocol {
            shard,
            detail: "event channel closed before completion".to_string(),
        }
    }

    /// Every shard completed: fold the buffered partials in ascending
    /// shard order and reassemble through the same merge as
    /// `Tdac::run`. Flags the outcome when any shard came through the
    /// fallback path.
    fn fold(mut self, mut model: PartitionedModel) -> Result<TdacOutcome, ShardError> {
        // ByAttributeGroup: one partial per group, straight into its
        // slot. HashByObject: per-group prediction unions across
        // shards (object buckets are disjoint, so the union is
        // order-independent; BTreeMap order makes it deterministic
        // anyway); trust re-derived after the fan-in.
        let mut merged: Vec<Option<TruthResult>> = vec![None; self.groups.len()];
        for (_, slot) in std::mem::take(&mut self.slots) {
            for p in slot.partials {
                match self.runner.plan.strategy {
                    ShardStrategy::ByAttributeGroup => {
                        merged[p.group] = Some(p.result);
                    }
                    ShardStrategy::HashByObject => {
                        let acc = merged[p.group].get_or_insert_with(TruthResult::default);
                        for (o, a, v, c) in p.result.iter() {
                            acc.set_prediction(o, a, v, c);
                        }
                        acc.iterations = acc.iterations.max(p.result.iterations);
                    }
                }
            }
        }

        let mut ordered: Vec<TruthResult> = Vec::with_capacity(self.groups.len());
        for (gi, slot) in merged.into_iter().enumerate() {
            let mut partial = slot.ok_or_else(|| ShardError::Protocol {
                shard: 0,
                detail: format!("no partial received for group {gi}"),
            })?;
            if self.runner.plan.strategy == ShardStrategy::HashByObject {
                // The global trust vector spans every object, so it is
                // re-derived from the unioned predictions over the FULL
                // dataset's view of the group — bit-exact per the
                // trust_from_predictions contract.
                let view = self.store.dataset.view_of(&self.groups[gi]);
                partial.source_trust = self
                    .base
                    .trust_from_predictions(&view, &partial)
                    .ok_or_else(|| ShardError::StrategyUnsupported {
                        algorithm: self.base.name().to_string(),
                        strategy: self.runner.plan.strategy,
                    })?;
            }
            ordered.push(partial);
        }

        if let Some((shard, detail)) = self.fallbacks.first() {
            if model.degradation.is_none() {
                let detail = if self.fallbacks.len() > 1 {
                    let others: Vec<String> = self.fallbacks[1..]
                        .iter()
                        .map(|(s, _)| s.to_string())
                        .collect();
                    format!("{detail}; shard(s) {} also fell back", others.join(", "))
                } else {
                    detail.clone()
                };
                model.degradation = Some(Degradation {
                    reason: DegradationReason::ShardFallback(ShardFault {
                        shard: *shard,
                        attempts: self.runner.plan.retry.max_attempts,
                        detail,
                    }),
                    phase: "shard/fallback".to_string(),
                    work: WorkCompleted::default(),
                });
            }
        }
        Ok(model.assemble(&ordered, self.obs))
    }
}

enum Event {
    Msg(usize, u32, ShardMsg),
    Bad(usize, u32, String),
    Eof(usize, u32),
}

struct WorkerHandle {
    child: Child,
    reader: Option<std::thread::JoinHandle<()>>,
}

fn kill_one(handle: Option<WorkerHandle>) {
    if let Some(mut w) = handle {
        let _ = w.child.kill();
        let _ = w.child.wait();
        if let Some(reader) = w.reader.take() {
            let _ = reader.join();
        }
    }
}

fn kill_all(workers: &mut HashMap<usize, WorkerHandle>) {
    for (_, handle) in workers.drain() {
        kill_one(Some(handle));
    }
}

/// RAII guard for the per-shard `.tds` slice files: every allocated
/// path is removed on drop — including on an early error return or a
/// coordinator panic — and [`SliceFiles::release`] removes a single
/// shard's slice eagerly once nothing can re-read it. Names are
/// collision-free without a tempfile dependency: process id plus a
/// process-global counter.
#[derive(Default)]
struct SliceFiles {
    paths: HashMap<usize, PathBuf>,
}

static SLICE_SEQ: AtomicU64 = AtomicU64::new(0);

impl SliceFiles {
    fn alloc(&mut self, shard: usize) -> PathBuf {
        let seq = SLICE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "td-shard-{}-{}-s{}.tds",
            std::process::id(),
            seq,
            shard
        ));
        self.paths.insert(shard, path.clone());
        path
    }

    /// Removes one shard's slice now instead of at drop time. Safe to
    /// call for shards that never allocated (or already released).
    fn release(&mut self, shard: usize) {
        if let Some(p) = self.paths.remove(&shard) {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for SliceFiles {
    fn drop(&mut self) {
        for p in self.paths.values() {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_shard_is_stable_and_in_range() {
        for n in 1..9 {
            for name in ["o1", "o2", "object-with-long-name", ""] {
                let s = object_shard(name, n);
                assert!(s < n);
                assert_eq!(s, object_shard(name, n), "stable across calls");
            }
        }
        // Regression pin: the routing is FNV-1a of the name, the same
        // hash the store's checksums use.
        assert_eq!(
            object_shard("o1", 4),
            (fnv1a(b"o1") % 4) as usize
        );
    }

    #[test]
    fn runner_rejects_in_process_backends() {
        let config = TdacConfig::default();
        assert!(!config.backend.is_sharded());
        let err = ShardRunner::new(config).unwrap_err();
        assert!(matches!(err, ShardError::Tdac(TdacError::InvalidConfig(_))));
    }

    #[test]
    fn slice_guard_releases_eagerly_and_cleans_on_drop() {
        let (p0, p1, p2);
        {
            let mut slices = SliceFiles::default();
            p0 = slices.alloc(0);
            p1 = slices.alloc(1);
            p2 = slices.alloc(2);
            for p in [&p0, &p1, &p2] {
                std::fs::write(p, b"slice bytes").unwrap();
            }
            // Eager release removes exactly the named shard's file.
            slices.release(1);
            assert!(p0.exists() && !p1.exists() && p2.exists());
            // Releasing a shard with no slice (never allocated, or
            // already released) is a no-op, not a panic.
            slices.release(1);
            slices.release(99);
        }
        // Drop sweeps whatever was still allocated — the early-return
        // and panic paths ride this.
        assert!(!p0.exists() && !p2.exists());
    }
}
