//! Sharded multi-process execution for TD-AC.
//!
//! This crate is the execution engine behind
//! [`ExecutionBackend::Sharded`](tdac_core::ExecutionBackend): a
//! coordinator ([`ShardRunner`]) that runs TD-AC's model selection
//! in-process, deals the selected attribute groups (or their object
//! buckets) to worker processes as `.tds` store slices, streams the
//! per-group [`TruthResult`](td_algorithms::TruthResult) partials back
//! over line-delimited JSON — the same wire idiom as td-serve — and
//! reassembles them through the exact merge path `Tdac::run` uses.
//! The headline property, enforced by td-verify's shard oracle: for
//! any shard count and either [`ShardStrategy`](tdac_core::ShardStrategy),
//! the sharded outcome is **bit-identical** to the single-process run.
//!
//! Worker processes are fork-of-self: `tdc worker` and
//! `td-verify worker` both route straight into [`worker_main`], so no
//! separate worker binary ships. See `docs/SHARDING.md` for the plan
//! format, the wire protocol, and the failure semantics.

#![warn(missing_docs)]

mod coordinator;
mod error;
pub mod protocol;
mod worker;

pub use coordinator::{object_shard, ShardRunner, WorkerCommand};
pub use error::ShardError;
pub use protocol::{GroupAssignment, ShardJob, ShardMsg, CHAOS_EXIT_ENV, CHAOS_PLAN_ENV};
pub use worker::{run_worker, worker_main};
