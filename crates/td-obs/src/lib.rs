//! Offline observability for the TD-AC pipeline.
//!
//! The pipeline's hot paths (distance matrix, k-sweep, clusterers,
//! per-group fixpoints, AccuGen's partition scan) are instrumented with
//! two primitives:
//!
//! - **Phase spans** ([`Observer::span`]): hierarchical wall-clock
//!   timers keyed by a `/`-separated path (`k_sweep/k=3`). Each span
//!   records its elapsed monotonic time when dropped; repeated spans on
//!   the same path aggregate (total nanoseconds + hit count).
//! - **Counters** ([`Observer::incr`]): atomic tallies of work units —
//!   distance evaluations, k-means/PAM iterations, fixpoint iterations,
//!   partitions scanned, distance-matrix cache hits/misses.
//!
//! Everything hangs off a cheap, cloneable [`Observer`] handle carried
//! inside the pipeline configuration. The default handle is **disabled**
//! and compiles to near-zero overhead: no clock reads, no allocation,
//! no atomics — every call short-circuits on a `None` check. An enabled
//! handle ([`Observer::enabled`]) shares one set of counters and phase
//! aggregates across clones, so rayon workers can record concurrently.
//!
//! Observation is **determinism-neutral by construction**: the observer
//! only reads clocks and bumps counters; it never feeds back into
//! control flow, so results are bit-identical with observation on or
//! off, at any thread count (td-verify asserts this).
//!
//! A [`RunProfile`] snapshot serializes the aggregates for reports such
//! as `BENCH_tdac.json`; [`RunProfile::delta_since`] isolates a single
//! run when a handle is reused. See `docs/OBSERVABILITY.md` for the
//! full span taxonomy and counter semantics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod limits;
pub use limits::{
    panic_message, Budget, CancelToken, Degradation, DegradationReason, ExecutionLimits,
    ShardFault, WorkCompleted,
};

/// Fixed work-unit counters tracked by every enabled [`Observer`].
///
/// Fixed counters are plain atomics — safe to bump from rayon workers
/// with no lock. Per-algorithm fixpoint tallies additionally go to a
/// labeled counter (`fixpoint_iterations/<algorithm>`), see
/// [`Observer::record_discovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Pairwise distance evaluations performed while *building* a
    /// distance matrix (upper triangle only: n·(n−1)/2 per build).
    DistanceEvals = 0,
    /// Lloyd iterations summed over every k-means restart.
    KMeansIterations = 1,
    /// PAM SWAP rounds (the BUILD step counts as iteration 0).
    PamIterations = 2,
    /// Base-algorithm fixpoint iterations summed over every observed
    /// `discover` call (majority voting counts as one iteration).
    FixpointIterations = 3,
    /// Attribute partitions evaluated by AccuGen (brute-force scan or
    /// greedy merge candidates).
    PartitionsScanned = 4,
    /// Consumers that *reused* the shared distance matrix instead of
    /// recomputing it (one per k in the sweep).
    DistCacheHits = 5,
    /// Shared distance-matrix builds (each is a cache miss the whole
    /// k-sweep then amortizes).
    DistCacheMisses = 6,
    /// Distance-matrix builds that ran on the bit-packed popcount
    /// kernel instead of the dense `f64` loop (one per build, not per
    /// pair — `DistanceEvals` still counts the pairs).
    PackedKernelInvocations = 7,
    /// Total `u64` words XORed by the packed kernel (pairs ×
    /// words-per-row); the packed analogue of `DistanceEvals × d`.
    WordsXored = 8,
    /// Budget probes performed at sequential phase boundaries by an
    /// armed [`Budget`] (zero when no [`ExecutionLimits`] are set —
    /// limit checks never run on unlimited configs).
    BudgetChecks = 9,
    /// Runs that exhausted a budget (or were cancelled) and returned a
    /// best-so-far outcome flagged with a [`Degradation`] record.
    DegradedRuns = 10,
    /// Worker panics caught at a task boundary and converted into a
    /// typed `WorkerPanic` error instead of aborting the process.
    WorkerPanics = 11,
    /// Attributes whose truth vectors had to be recomputed by an
    /// incremental `ingest()` (touched by delta claims or by a changed
    /// reference prediction).
    DirtyAttributes = 12,
    /// Partition groups whose cached per-group `TruthResult` was reused
    /// by an incremental `ingest()` instead of re-running the base
    /// algorithm.
    PartitionsReused = 13,
    /// Full re-partitions (k-sweeps) scheduled by the drift trigger or
    /// forced by structural growth during incremental ingestion.
    DriftRepartitions = 14,
    /// Bytes brought in from disk by `td-store` loads (file length per
    /// successful open, whether the sections decode zero-copy or not).
    BytesMapped = 15,
    /// Store sections whose packed words were viewed as `&[u64]` in
    /// place (8-byte-aligned buffer) instead of being decoded word by
    /// word. One per aligned section view, not per word.
    ZeroCopyLoads = 16,
    /// Worker processes spawned by the `td-shard` coordinator (one per
    /// shard actually launched, including chaos-killed ones).
    ShardsSpawned = 17,
    /// Per-group partial `TruthResult`s received from shard workers and
    /// accepted into the merge.
    ShardPartials = 18,
    /// Shard attempts that faulted (worker death, stall past the
    /// coordinator's patience, or protocol garble). Under the default
    /// fail-fast policy a fault aborts the distributed phase; under a
    /// retry policy it schedules a retry or an in-process fallback
    /// instead — either way the fault itself is tallied here.
    ShardFailures = 19,
    /// Shard faults answered with a scheduled retry (backoff + respawn)
    /// instead of aborting the run.
    ShardRetries = 20,
    /// Worker processes re-spawned from their persisted `.tds` slice
    /// after a backoff window elapsed.
    ShardRespawns = 21,
    /// Shards whose retry budget exhausted and whose jobs the
    /// coordinator therefore ran in-process, flagging the outcome with
    /// a `ShardFallback` degradation (never thinning the merge).
    ShardFallbacks = 22,
}

impl Counter {
    /// Number of fixed counters (the backing array length).
    pub const COUNT: usize = 23;

    /// All fixed counters, in serialization order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::DistanceEvals,
        Counter::KMeansIterations,
        Counter::PamIterations,
        Counter::FixpointIterations,
        Counter::PartitionsScanned,
        Counter::DistCacheHits,
        Counter::DistCacheMisses,
        Counter::PackedKernelInvocations,
        Counter::WordsXored,
        Counter::BudgetChecks,
        Counter::DegradedRuns,
        Counter::WorkerPanics,
        Counter::DirtyAttributes,
        Counter::PartitionsReused,
        Counter::DriftRepartitions,
        Counter::BytesMapped,
        Counter::ZeroCopyLoads,
        Counter::ShardsSpawned,
        Counter::ShardPartials,
        Counter::ShardFailures,
        Counter::ShardRetries,
        Counter::ShardRespawns,
        Counter::ShardFallbacks,
    ];

    /// Stable snake_case name used in [`RunProfile`] and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DistanceEvals => "distance_evals",
            Counter::KMeansIterations => "kmeans_iterations",
            Counter::PamIterations => "pam_iterations",
            Counter::FixpointIterations => "fixpoint_iterations",
            Counter::PartitionsScanned => "partitions_scanned",
            Counter::DistCacheHits => "dist_cache_hits",
            Counter::DistCacheMisses => "dist_cache_misses",
            Counter::PackedKernelInvocations => "packed_kernel_invocations",
            Counter::WordsXored => "words_xored",
            Counter::BudgetChecks => "budget_checks",
            Counter::DegradedRuns => "degraded_runs",
            Counter::WorkerPanics => "worker_panics",
            Counter::DirtyAttributes => "dirty_attributes",
            Counter::PartitionsReused => "partitions_reused",
            Counter::DriftRepartitions => "drift_repartitions",
            Counter::BytesMapped => "bytes_mapped",
            Counter::ZeroCopyLoads => "zero_copy_loads",
            Counter::ShardsSpawned => "shards_spawned",
            Counter::ShardPartials => "shard_partials",
            Counter::ShardFailures => "shard_failures",
            Counter::ShardRetries => "shard_retries",
            Counter::ShardRespawns => "shard_respawns",
            Counter::ShardFallbacks => "shard_fallbacks",
        }
    }
}

/// A hook fired at every phase boundary an enabled observer sees: once
/// when a span opens (`k_sweep/k=3`, `per_group_run/group=0`, …) and
/// once per explicit [`Observer::checkpoint`]. The pipeline never
/// installs one; it exists so test harnesses (td-verify's chaos module)
/// can inject faults — panics, delays, cancellations — at precise
/// points without touching pipeline code. Hooks run on whatever thread
/// hits the boundary, so implementations must be `Send + Sync`.
///
/// A hook that panics is indistinguishable from pipeline code panicking
/// at that boundary — exactly the property chaos testing needs.
pub trait PhaseHook: Send + Sync {
    /// Called with the `/`-separated phase path.
    fn on_phase(&self, path: &str);
}

#[derive(Default)]
struct PhaseAgg {
    total_ns: u64,
    count: u64,
}

/// Shared state behind an enabled observer. Fixed counters are
/// lock-free; phase aggregates and labeled counters sit behind a mutex
/// that is only touched on span drop / labeled increment (cold relative
/// to the work they measure).
struct ObsCore {
    counters: [AtomicU64; Counter::COUNT],
    phases: Mutex<BTreeMap<String, PhaseAgg>>,
    labeled: Mutex<BTreeMap<String, u64>>,
    /// Test-harness fault-injection point; `None` in every production
    /// configuration (see [`PhaseHook`]).
    hook: Option<Arc<dyn PhaseHook>>,
}

impl ObsCore {
    fn new() -> Self {
        Self::with_hook(None)
    }

    fn with_hook(hook: Option<Arc<dyn PhaseHook>>) -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phases: Mutex::new(BTreeMap::new()),
            labeled: Mutex::new(BTreeMap::new()),
            hook,
        }
    }
}

/// Cheap handle to the instrumentation state (or to nothing at all).
///
/// `Observer::default()` is the **disabled** handle: every method is a
/// no-op behind a single `Option` check, so plain-struct configs pay
/// essentially nothing for the instrumentation hooks. Clone an
/// [`Observer::enabled`] handle into a config to collect a profile;
/// clones share state, so the handle you kept and the one the pipeline
/// carries see the same aggregates.
#[derive(Clone, Default)]
pub struct Observer {
    core: Option<Arc<ObsCore>>,
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.core.is_some() {
            "Observer(enabled)"
        } else {
            "Observer(disabled)"
        })
    }
}

impl Observer {
    /// The no-op handle (same as `Observer::default()`).
    pub const fn disabled() -> Self {
        Self { core: None }
    }

    /// A live handle with fresh counters and phase aggregates.
    pub fn enabled() -> Self {
        Self {
            core: Some(Arc::new(ObsCore::new())),
        }
    }

    /// An enabled handle with a [`PhaseHook`] fired at every phase
    /// boundary — the chaos-injection entry point used by td-verify.
    pub fn with_hook(hook: Arc<dyn PhaseHook>) -> Self {
        Self {
            core: Some(Arc::new(ObsCore::with_hook(Some(hook)))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Current value of a fixed counter (`0` when disabled). Cheap
    /// relaxed load; used by [`Budget`] to compare work done against
    /// configured limits without any extra bookkeeping in hot loops.
    pub fn counter_value(&self, counter: Counter) -> u64 {
        match &self.core {
            Some(core) => core.counters[counter as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Fires the phase hook (if any) at an explicit boundary that has no
    /// span of its own — e.g. once per partition inside AccuGen's scan,
    /// where a timed span per Bell(n) item would be pure overhead. No-op
    /// unless this handle was built with [`Observer::with_hook`].
    pub fn checkpoint(&self, path: &str) {
        if let Some(core) = &self.core {
            if let Some(hook) = &core.hook {
                hook.on_phase(path);
            }
        }
    }

    /// Adds `n` to a fixed counter. Lock-free; no-op when disabled.
    pub fn incr(&self, counter: Counter, n: u64) {
        if let Some(core) = &self.core {
            core.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` to a labeled counter (e.g. a per-algorithm tally). The
    /// label closure only runs when the observer is enabled.
    pub fn incr_labeled(&self, label: impl FnOnce() -> String, n: u64) {
        if let Some(core) = &self.core {
            let mut labeled = core.labeled.lock().expect("labeled counters poisoned");
            *labeled.entry(label()).or_insert(0) += n;
        }
    }

    /// Records one base-algorithm `discover` call: bumps the global
    /// [`Counter::FixpointIterations`] and the per-algorithm labeled
    /// counter `fixpoint_iterations/<algorithm>`.
    pub fn record_discovery(&self, algorithm: &str, iterations: u64) {
        if self.core.is_some() {
            self.incr(Counter::FixpointIterations, iterations);
            self.incr_labeled(|| format!("fixpoint_iterations/{algorithm}"), iterations);
        }
    }

    /// Opens a phase span on a static path. The span records its
    /// elapsed wall-clock time into the aggregate for `path` when
    /// dropped. Disabled handles return an inert span and never read
    /// the clock.
    pub fn span(&self, path: &'static str) -> Span {
        self.span_with(|| path.to_string())
    }

    /// Opens a phase span whose path is computed lazily — use for
    /// dynamic paths like `k_sweep/k=<k>` so the format cost is only
    /// paid when observation is on.
    pub fn span_with(&self, path: impl FnOnce() -> String) -> Span {
        Span {
            rec: self.core.as_ref().map(|core| {
                let path = path();
                if let Some(hook) = &core.hook {
                    hook.on_phase(&path);
                }
                SpanRec {
                    core: Arc::clone(core),
                    path,
                    start: Instant::now(),
                }
            }),
        }
    }

    /// Snapshot of everything recorded so far, or `None` when disabled.
    ///
    /// Counters come out in [`Counter::ALL`] order (zeros included, so
    /// reports always show the full set) followed by labeled counters
    /// in lexicographic order.
    pub fn profile(&self) -> Option<RunProfile> {
        let core = self.core.as_ref()?;
        let mut counters: Vec<CounterValue> = Counter::ALL
            .iter()
            .map(|&c| CounterValue {
                name: c.name().to_string(),
                value: core.counters[c as usize].load(Ordering::Relaxed),
            })
            .collect();
        {
            let labeled = core.labeled.lock().expect("labeled counters poisoned");
            counters.extend(labeled.iter().map(|(name, &value)| CounterValue {
                name: name.clone(),
                value,
            }));
        }
        let phases = {
            let phases = core.phases.lock().expect("phase aggregates poisoned");
            phases
                .iter()
                .map(|(path, agg)| PhaseProfile {
                    path: path.clone(),
                    total_ns: agg.total_ns,
                    count: agg.count,
                })
                .collect()
        };
        Some(RunProfile { phases, counters })
    }
}

struct SpanRec {
    core: Arc<ObsCore>,
    path: String,
    start: Instant,
}

/// RAII guard for one timed phase; see [`Observer::span`].
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct Span {
    rec: Option<SpanRec>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let elapsed = rec.start.elapsed().as_nanos() as u64;
            let mut phases = rec.core.phases.lock().expect("phase aggregates poisoned");
            let agg = phases.entry(rec.path).or_default();
            agg.total_ns += elapsed;
            agg.count += 1;
        }
    }
}

/// Aggregate for one span path: total wall time and how many spans hit it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// `/`-separated span path, e.g. `k_sweep/k=3`.
    pub path: String,
    /// Total wall-clock nanoseconds across all spans on this path.
    pub total_ns: u64,
    /// Number of spans recorded on this path.
    pub count: u64,
}

/// One named counter reading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Counter name — a [`Counter::name`] or a labeled counter such as
    /// `fixpoint_iterations/accu`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Serializable snapshot of an observer's aggregates.
///
/// Attached to pipeline outcomes (`TdacOutcome::profile`,
/// `AccuGenOutcome::profile`) as the *delta* recorded during that run,
/// and embedded in `BENCH_tdac.json` by `scripts/bench.sh --profile`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Phase aggregates sorted by path.
    pub phases: Vec<PhaseProfile>,
    /// Counter readings: fixed counters first, then labeled ones.
    pub counters: Vec<CounterValue>,
}

impl RunProfile {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a phase aggregate by exact path.
    pub fn phase(&self, path: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Phase aggregates whose path starts with `prefix` (e.g.
    /// `"k_sweep/"` for every per-k sub-span).
    pub fn phases_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a PhaseProfile> {
        self.phases.iter().filter(move |p| p.path.starts_with(prefix))
    }

    /// What happened *after* `baseline` was snapshotted from the same
    /// observer: counters are subtracted (saturating), phases keep only
    /// the paths whose hit count advanced. Used to isolate one run when
    /// an observer handle is reused across several.
    pub fn delta_since(&self, baseline: &RunProfile) -> RunProfile {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterValue {
                name: c.name.clone(),
                value: c.value.saturating_sub(baseline.counter(&c.name).unwrap_or(0)),
            })
            .collect();
        let phases = self
            .phases
            .iter()
            .filter_map(|p| {
                let (base_ns, base_count) = baseline
                    .phase(&p.path)
                    .map(|b| (b.total_ns, b.count))
                    .unwrap_or((0, 0));
                let count = p.count.saturating_sub(base_count);
                (count > 0).then(|| PhaseProfile {
                    path: p.path.clone(),
                    total_ns: p.total_ns.saturating_sub(base_ns),
                    count,
                })
            })
            .collect();
        RunProfile { phases, counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::default();
        assert!(!obs.is_enabled());
        obs.incr(Counter::DistanceEvals, 10);
        obs.record_discovery("mv", 3);
        {
            let _s = obs.span("phase");
        }
        assert!(obs.profile().is_none());
        assert_eq!(format!("{obs:?}"), "Observer(disabled)");
    }

    #[test]
    fn clones_share_state() {
        let obs = Observer::enabled();
        let clone = obs.clone();
        clone.incr(Counter::DistanceEvals, 5);
        obs.incr(Counter::DistanceEvals, 2);
        let profile = obs.profile().unwrap();
        assert_eq!(profile.counter("distance_evals"), Some(7));
        // Zero counters still show up so reports carry the full set.
        assert_eq!(profile.counter("pam_iterations"), Some(0));
    }

    #[test]
    fn spans_aggregate_by_path() {
        let obs = Observer::enabled();
        for k in [2usize, 3, 2] {
            let _outer = obs.span("k_sweep");
            let _inner = obs.span_with(|| format!("k_sweep/k={k}"));
            std::thread::sleep(Duration::from_millis(1));
        }
        let profile = obs.profile().unwrap();
        assert_eq!(profile.phase("k_sweep").unwrap().count, 3);
        assert_eq!(profile.phase("k_sweep/k=2").unwrap().count, 2);
        assert_eq!(profile.phase("k_sweep/k=3").unwrap().count, 1);
        assert!(profile.phase("k_sweep/k=2").unwrap().total_ns > 0);
        assert_eq!(profile.phases_under("k_sweep/").count(), 2);
    }

    #[test]
    fn labeled_counters_record_per_algorithm() {
        let obs = Observer::enabled();
        obs.record_discovery("accu", 12);
        obs.record_discovery("accu", 3);
        obs.record_discovery("sums", 7);
        let profile = obs.profile().unwrap();
        assert_eq!(profile.counter("fixpoint_iterations"), Some(22));
        assert_eq!(profile.counter("fixpoint_iterations/accu"), Some(15));
        assert_eq!(profile.counter("fixpoint_iterations/sums"), Some(7));
    }

    #[test]
    fn delta_since_isolates_a_run() {
        let obs = Observer::enabled();
        obs.incr(Counter::KMeansIterations, 4);
        {
            let _s = obs.span("cluster");
        }
        let baseline = obs.profile().unwrap();
        obs.incr(Counter::KMeansIterations, 6);
        {
            let _s = obs.span("merge");
        }
        let delta = obs.profile().unwrap().delta_since(&baseline);
        assert_eq!(delta.counter("kmeans_iterations"), Some(6));
        // `cluster` did not advance after the baseline, so it drops out.
        assert!(delta.phase("cluster").is_none());
        assert_eq!(delta.phase("merge").unwrap().count, 1);
    }

    #[test]
    fn phase_hook_fires_on_spans_and_checkpoints() {
        struct Recorder(Mutex<Vec<String>>);
        impl PhaseHook for Recorder {
            fn on_phase(&self, path: &str) {
                self.0.lock().unwrap().push(path.to_string());
            }
        }
        let recorder = Arc::new(Recorder(Mutex::new(Vec::new())));
        let obs = Observer::with_hook(recorder.clone());
        {
            let _s = obs.span("distance_matrix");
            obs.checkpoint("partition_scan/partition");
        }
        let _ = obs.span_with(|| "k_sweep/k=2".to_string());
        assert_eq!(
            *recorder.0.lock().unwrap(),
            vec!["distance_matrix", "partition_scan/partition", "k_sweep/k=2"]
        );
        // Hook-bearing observers still record normally.
        assert_eq!(obs.profile().unwrap().phase("distance_matrix").unwrap().count, 1);
        // Disabled and plain-enabled handles never fire (or hold) a hook.
        Observer::disabled().checkpoint("x");
        Observer::enabled().checkpoint("x");
    }

    #[test]
    fn run_profile_serde_roundtrip() {
        let obs = Observer::enabled();
        obs.incr(Counter::PartitionsScanned, 9);
        obs.record_discovery("mv", 1);
        {
            let _s = obs.span("partition_scan");
        }
        let profile = obs.profile().unwrap();
        let json = serde_json::to_string(&profile).unwrap();
        let back: RunProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }
}
