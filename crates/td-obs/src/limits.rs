//! Execution limits, cooperative cancellation, and graceful degradation.
//!
//! A pipeline run can be bounded four ways — wall-clock deadline,
//! distance evaluations, fixpoint iterations, partitions scanned — and
//! cancelled cooperatively through a shared [`CancelToken`]. The limits
//! live in [`ExecutionLimits`] (a plain-data config field); at run start
//! the pipeline arms a [`Budget`], which snapshots the observer's
//! counters and the clock, then probes them at **sequential phase
//! boundaries** — never inside hot loops. The counters the pipeline
//! already maintains for observability double as the budget meters, so
//! an unlimited config pays nothing and a limited one pays a handful of
//! relaxed atomic loads per run.
//!
//! Exhaustion is not an error: the run keeps its best-so-far answer and
//! flags the outcome with a [`Degradation`] record naming the reason,
//! the phase that detected it, and the work completed. Counter-based
//! budgets are checked at deterministic points, so a degraded outcome
//! is bit-identical at any thread count; deadline and cancellation are
//! inherently racy in *where* they cut the run short, but the outcome is
//! still always either complete or flagged — never silently truncated.

use crate::{Counter, Observer};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shareable cooperative-cancellation flag.
///
/// Clones share one flag: hand a clone to the pipeline via
/// [`ExecutionLimits::with_cancel`], keep one, and call
/// [`CancelToken::cancel`] from any thread. The pipeline polls it at
/// phase boundaries and winds down with a best-so-far outcome flagged
/// [`DegradationReason::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    /// Tokens are equal when they share the same flag (clone identity).
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// Resource budgets for one pipeline run. `None` everywhere (the
/// default) means unlimited — the budget machinery is then never armed
/// and the run path is byte-for-byte the PR-4 behaviour.
///
/// Every `Some` bound must be ≥ 1; [`ExecutionLimits::validate`]
/// rejects zero budgets (a zero budget is a request to do no work — use
/// cancellation or don't call the pipeline).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionLimits {
    /// Wall-clock deadline for the run, in milliseconds from entry.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Cap on pairwise distance evaluations ([`Counter::DistanceEvals`]).
    #[serde(default)]
    pub max_distance_evals: Option<u64>,
    /// Cap on base-algorithm fixpoint iterations
    /// ([`Counter::FixpointIterations`]).
    #[serde(default)]
    pub max_fixpoint_iterations: Option<u64>,
    /// Cap on attribute partitions evaluated
    /// ([`Counter::PartitionsScanned`]); AccuGen enforces it exactly by
    /// truncating its lazy enumeration, so the best-so-far winner is
    /// deterministic at any thread count.
    #[serde(default)]
    pub max_partitions: Option<u64>,
    /// Cooperative cancellation flag; not serialized (a config loaded
    /// from JSON deserializes without one, like the observer handle).
    #[serde(skip)]
    pub cancel: Option<CancelToken>,
}

impl ExecutionLimits {
    /// The unlimited default, spelled out.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any bound or a cancel token is set. When `false`, the
    /// pipeline never arms a [`Budget`] and pays zero overhead.
    pub fn is_active(&self) -> bool {
        self.deadline_ms.is_some()
            || self.max_distance_evals.is_some()
            || self.max_fixpoint_iterations.is_some()
            || self.max_partitions.is_some()
            || self.cancel.is_some()
    }

    /// Rejects zero budgets. Called by `TdacConfigBuilder::build()`; the
    /// message names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("deadline_ms", self.deadline_ms),
            ("max_distance_evals", self.max_distance_evals),
            ("max_fixpoint_iterations", self.max_fixpoint_iterations),
            ("max_partitions", self.max_partitions),
        ] {
            if value == Some(0) {
                return Err(format!(
                    "limits.{name} must be at least 1 (use None for unlimited)"
                ));
            }
        }
        Ok(())
    }

    /// Sets the wall-clock deadline (rounded up to at least 1 ms).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline_ms = Some((deadline.as_millis() as u64).max(1));
        self
    }

    /// Caps pairwise distance evaluations.
    pub fn with_max_distance_evals(mut self, n: u64) -> Self {
        self.max_distance_evals = Some(n);
        self
    }

    /// Caps base-algorithm fixpoint iterations.
    pub fn with_max_fixpoint_iterations(mut self, n: u64) -> Self {
        self.max_fixpoint_iterations = Some(n);
        self
    }

    /// Caps partitions evaluated by AccuGen.
    pub fn with_max_partitions(mut self, n: u64) -> Self {
        self.max_partitions = Some(n);
        self
    }

    /// Attaches a cancellation token (keep a clone to trigger it).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// A shard whose worker attempts were exhausted and whose jobs the
/// coordinator completed in-process instead — the payload of
/// [`DegradationReason::ShardFallback`]. Self-describing: the record
/// names the shard, how many spawn attempts it burned, and what the
/// last fault looked like.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFault {
    /// The shard whose workers kept dying.
    pub shard: usize,
    /// Worker-process attempts consumed before falling back (the
    /// policy's `max_attempts`).
    pub attempts: u32,
    /// The last fault observed (death, stall, protocol garble), plus
    /// any other shards that fell back in the same run.
    pub detail: String,
}

/// Which budget cut the run short. Bounds carry the configured cap so a
/// degradation record is self-describing without the config.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationReason {
    /// The wall-clock deadline (payload: configured `deadline_ms`).
    Deadline(u64),
    /// The [`CancelToken`] fired.
    Cancelled,
    /// Distance-evaluation cap (payload: configured cap).
    DistanceEvals(u64),
    /// Fixpoint-iteration cap (payload: configured cap).
    FixpointIterations(u64),
    /// Partition-scan cap (payload: configured cap).
    Partitions(u64),
    /// A shard exhausted its worker-process retry budget and its jobs
    /// ran in-process instead (the `td-shard` supervisor's last rung:
    /// degrade, never die — and never thin the merge). Unlike the
    /// budget reasons above, the *result is complete*; the flag records
    /// that the execution path was not the configured one.
    ShardFallback(ShardFault),
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::Deadline(ms) => write!(f, "deadline of {ms} ms reached"),
            DegradationReason::Cancelled => write!(f, "cancelled"),
            DegradationReason::DistanceEvals(cap) => {
                write!(f, "distance-evaluation budget of {cap} exhausted")
            }
            DegradationReason::FixpointIterations(cap) => {
                write!(f, "fixpoint-iteration budget of {cap} exhausted")
            }
            DegradationReason::Partitions(cap) => {
                write!(f, "partition-scan budget of {cap} exhausted")
            }
            DegradationReason::ShardFallback(fault) => write!(
                f,
                "shard {} exhausted {} worker attempt(s) and ran in-process: {}",
                fault.shard, fault.attempts, fault.detail
            ),
        }
    }
}

/// Work the run actually completed before degrading, read from the
/// observer counters the pipeline maintains anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCompleted {
    /// Pairwise distance evaluations performed.
    pub distance_evals: u64,
    /// Base-algorithm fixpoint iterations performed.
    pub fixpoint_iterations: u64,
    /// Attribute partitions evaluated.
    pub partitions_scanned: u64,
    /// Wall-clock milliseconds elapsed since the budget was armed.
    pub elapsed_ms: u64,
}

/// Structured record attached to a degraded (best-so-far) outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Which budget fired.
    pub reason: DegradationReason,
    /// The phase boundary that detected exhaustion (span-path
    /// vocabulary: `truth_vectors`, `k_sweep`, `partition_scan`, …).
    pub phase: String,
    /// Counters at detection time (this run's delta, not lifetime
    /// totals).
    pub work: WorkCompleted,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at phase `{}`", self.reason, self.phase)
    }
}

/// An armed budget: the runtime counterpart of [`ExecutionLimits`].
///
/// [`Budget::arm`] returns `None` when the limits are inactive, so the
/// unlimited path carries no budget state at all. An armed budget
/// snapshots the observer's counters (budgets meter *this run*, not the
/// handle's lifetime) and the clock, then answers two questions:
///
/// - [`Budget::interrupted`] — cancel/deadline only; cheap enough for
///   per-task probes inside parallel loops (one atomic load + one clock
///   read), returning just the reason.
/// - [`Budget::check`] — the full probe for sequential phase
///   boundaries; also compares counter deltas against caps and builds
///   the [`Degradation`] record on exhaustion.
#[derive(Debug, Clone)]
pub struct Budget {
    limits: ExecutionLimits,
    obs: Observer,
    start: Instant,
    base_distance_evals: u64,
    base_fixpoint_iterations: u64,
    base_partitions: u64,
}

impl Budget {
    /// Arms a budget against `obs` (the observer whose counters meter
    /// the run). Returns `None` when `limits` is inactive.
    ///
    /// Counter-based caps require an *enabled* observer — the pipeline
    /// guarantees this by substituting a private enabled handle when the
    /// user's is disabled but limits are set.
    pub fn arm(limits: &ExecutionLimits, obs: &Observer) -> Option<Budget> {
        if !limits.is_active() {
            return None;
        }
        Some(Budget {
            limits: limits.clone(),
            obs: obs.clone(),
            start: Instant::now(),
            base_distance_evals: obs.counter_value(Counter::DistanceEvals),
            base_fixpoint_iterations: obs.counter_value(Counter::FixpointIterations),
            base_partitions: obs.counter_value(Counter::PartitionsScanned),
        })
    }

    /// The limits this budget enforces.
    pub fn limits(&self) -> &ExecutionLimits {
        &self.limits
    }

    /// Distance evaluations since arming.
    pub fn distance_evals(&self) -> u64 {
        self.obs
            .counter_value(Counter::DistanceEvals)
            .saturating_sub(self.base_distance_evals)
    }

    /// Fixpoint iterations since arming.
    pub fn fixpoint_iterations(&self) -> u64 {
        self.obs
            .counter_value(Counter::FixpointIterations)
            .saturating_sub(self.base_fixpoint_iterations)
    }

    /// Partitions evaluated since arming.
    pub fn partitions_scanned(&self) -> u64 {
        self.obs
            .counter_value(Counter::PartitionsScanned)
            .saturating_sub(self.base_partitions)
    }

    /// Snapshot of the work completed so far.
    pub fn work(&self) -> WorkCompleted {
        WorkCompleted {
            distance_evals: self.distance_evals(),
            fixpoint_iterations: self.fixpoint_iterations(),
            partitions_scanned: self.partitions_scanned(),
            elapsed_ms: self.start.elapsed().as_millis() as u64,
        }
    }

    /// How many more partitions the scan may evaluate (`None` when
    /// unbounded). AccuGen truncates its lazy enumeration to this, which
    /// makes partition budgets *exact* and thread-count-deterministic.
    pub fn remaining_partitions(&self) -> Option<u64> {
        self.limits
            .max_partitions
            .map(|cap| cap.saturating_sub(self.partitions_scanned()))
    }

    /// Cheap interruption probe (cancel flag, then deadline) for use
    /// inside parallel loops. Does not build a record or touch budget
    /// counters.
    pub fn interrupted(&self) -> Option<DegradationReason> {
        if let Some(token) = &self.limits.cancel {
            if token.is_cancelled() {
                return Some(DegradationReason::Cancelled);
            }
        }
        if let Some(ms) = self.limits.deadline_ms {
            if self.start.elapsed() >= Duration::from_millis(ms) {
                return Some(DegradationReason::Deadline(ms));
            }
        }
        None
    }

    /// Full budget probe at a sequential phase boundary named `phase`.
    /// Bumps [`Counter::BudgetChecks`]; on exhaustion builds the
    /// [`Degradation`] record (bumping [`Counter::DegradedRuns`]).
    pub fn check(&self, phase: &str) -> Option<Degradation> {
        self.obs.incr(Counter::BudgetChecks, 1);
        let reason = self.interrupted().or_else(|| self.exhausted_counter())?;
        Some(self.degrade(reason, phase))
    }

    /// Pre-flight probe before a distance-matrix build of `pairs`
    /// evaluations: degrades *before* starting work that cannot fit in
    /// the budget, keeping the cap an upper bound on work actually done.
    pub fn precharge_distance_evals(&self, pairs: u64, phase: &str) -> Option<Degradation> {
        let cap = self.limits.max_distance_evals?;
        self.obs.incr(Counter::BudgetChecks, 1);
        if self.distance_evals().saturating_add(pairs) > cap {
            Some(self.degrade(DegradationReason::DistanceEvals(cap), phase))
        } else {
            None
        }
    }

    /// Builds the degradation record for `reason` detected at `phase`
    /// and counts it ([`Counter::DegradedRuns`]).
    pub fn degrade(&self, reason: DegradationReason, phase: &str) -> Degradation {
        self.obs.incr(Counter::DegradedRuns, 1);
        Degradation {
            reason,
            phase: phase.to_string(),
            work: self.work(),
        }
    }

    fn exhausted_counter(&self) -> Option<DegradationReason> {
        // Distance evals: strict overshoot only. The pre-charge probe is
        // the enforcement point (a build either fits or never starts), so
        // a run whose matrix exactly fills the cap is *complete*, not
        // degraded. Fixpoint/partition caps use `>=` instead: the work
        // ahead of the boundary would consume more of them.
        if let Some(cap) = self.limits.max_distance_evals {
            if self.distance_evals() > cap {
                return Some(DegradationReason::DistanceEvals(cap));
            }
        }
        if let Some(cap) = self.limits.max_fixpoint_iterations {
            if self.fixpoint_iterations() >= cap {
                return Some(DegradationReason::FixpointIterations(cap));
            }
        }
        if let Some(cap) = self.limits.max_partitions {
            if self.partitions_scanned() >= cap {
                return Some(DegradationReason::Partitions(cap));
            }
        }
        None
    }
}

/// Renders a caught panic payload (`Box<dyn Any>`) as the human-readable
/// message — `&str` / `String` payloads verbatim, anything else a stock
/// placeholder. Shared by every `catch_unwind` task boundary in the
/// pipeline so `WorkerPanic` errors read uniformly.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t, clone);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn default_limits_are_inactive_and_arm_to_none() {
        let limits = ExecutionLimits::none();
        assert!(!limits.is_active());
        assert!(limits.validate().is_ok());
        assert!(Budget::arm(&limits, &Observer::enabled()).is_none());
    }

    #[test]
    fn zero_budgets_are_rejected() {
        for limits in [
            ExecutionLimits { deadline_ms: Some(0), ..Default::default() },
            ExecutionLimits { max_distance_evals: Some(0), ..Default::default() },
            ExecutionLimits { max_fixpoint_iterations: Some(0), ..Default::default() },
            ExecutionLimits { max_partitions: Some(0), ..Default::default() },
        ] {
            let err = limits.validate().unwrap_err();
            assert!(err.contains("at least 1"), "{err}");
        }
        assert!(ExecutionLimits::none().with_max_partitions(1).validate().is_ok());
    }

    #[test]
    fn limits_serde_roundtrip_drops_the_token() {
        let limits = ExecutionLimits::none()
            .with_deadline(Duration::from_millis(250))
            .with_max_distance_evals(10_000)
            .with_cancel(CancelToken::new());
        let json = serde_json::to_string(&limits).unwrap();
        let back: ExecutionLimits = serde_json::from_str(&json).unwrap();
        assert_eq!(back.deadline_ms, Some(250));
        assert_eq!(back.max_distance_evals, Some(10_000));
        assert!(back.cancel.is_none(), "cancel tokens are not serialized");
    }

    #[test]
    fn legacy_limits_json_deserializes_unlimited() {
        // A config written before any of the bounds existed.
        let back: ExecutionLimits = serde_json::from_str("{}").unwrap();
        assert!(!back.is_active());
    }

    #[test]
    fn budget_meters_this_run_not_the_handle_lifetime() {
        let obs = Observer::enabled();
        obs.incr(Counter::DistanceEvals, 100); // a previous run
        let limits = ExecutionLimits::none().with_max_distance_evals(10);
        let budget = Budget::arm(&limits, &obs).unwrap();
        assert_eq!(budget.distance_evals(), 0);
        assert!(budget.check("phase").is_none(), "fresh budget is not exhausted");
        obs.incr(Counter::DistanceEvals, 10);
        assert!(
            budget.check("phase").is_none(),
            "exactly filling the cap is complete, not degraded"
        );
        obs.incr(Counter::DistanceEvals, 1);
        let deg = budget.check("distance_matrix").unwrap();
        assert_eq!(deg.reason, DegradationReason::DistanceEvals(10));
        assert_eq!(deg.phase, "distance_matrix");
        assert_eq!(deg.work.distance_evals, 11);
        assert_eq!(obs.counter_value(Counter::DegradedRuns), 1);
        assert_eq!(obs.counter_value(Counter::BudgetChecks), 3);
    }

    #[test]
    fn precharge_rejects_builds_that_cannot_fit() {
        let obs = Observer::enabled();
        let limits = ExecutionLimits::none().with_max_distance_evals(10);
        let budget = Budget::arm(&limits, &obs).unwrap();
        assert!(budget.precharge_distance_evals(10, "distance_matrix").is_none());
        let deg = budget.precharge_distance_evals(11, "distance_matrix").unwrap();
        assert_eq!(deg.reason, DegradationReason::DistanceEvals(10));
        assert_eq!(deg.work.distance_evals, 0, "no work was started");
    }

    #[test]
    fn cancellation_preempts_counter_exhaustion() {
        let obs = Observer::enabled();
        let token = CancelToken::new();
        let limits = ExecutionLimits::none()
            .with_max_fixpoint_iterations(1)
            .with_cancel(token.clone());
        let budget = Budget::arm(&limits, &obs).unwrap();
        obs.incr(Counter::FixpointIterations, 5);
        token.cancel();
        assert_eq!(
            budget.check("k_sweep").unwrap().reason,
            DegradationReason::Cancelled
        );
        assert_eq!(budget.interrupted(), Some(DegradationReason::Cancelled));
    }

    #[test]
    fn deadline_fires_after_it_elapses() {
        let limits = ExecutionLimits::none().with_deadline(Duration::from_millis(1));
        let budget = Budget::arm(&limits, &Observer::enabled()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(budget.interrupted(), Some(DegradationReason::Deadline(1)));
    }

    #[test]
    fn remaining_partitions_counts_down() {
        let obs = Observer::enabled();
        let limits = ExecutionLimits::none().with_max_partitions(7);
        let budget = Budget::arm(&limits, &obs).unwrap();
        assert_eq!(budget.remaining_partitions(), Some(7));
        obs.incr(Counter::PartitionsScanned, 5);
        assert_eq!(budget.remaining_partitions(), Some(2));
        obs.incr(Counter::PartitionsScanned, 5);
        assert_eq!(budget.remaining_partitions(), Some(0));
        let deg = budget.check("partition_scan").unwrap();
        assert_eq!(deg.reason, DegradationReason::Partitions(7));
        assert_eq!(deg.work.partitions_scanned, 10);
    }

    #[test]
    fn degradation_serde_roundtrip_and_display() {
        let deg = Degradation {
            reason: DegradationReason::Partitions(42),
            phase: "partition_scan".to_string(),
            work: WorkCompleted {
                partitions_scanned: 42,
                elapsed_ms: 3,
                ..Default::default()
            },
        };
        let json = serde_json::to_string(&deg).unwrap();
        let back: Degradation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, deg);
        assert_eq!(
            deg.to_string(),
            "partition-scan budget of 42 exhausted at phase `partition_scan`"
        );
        assert_eq!(DegradationReason::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(3u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
