//! Chaos oracles for the td-serve front end: faults injected into the
//! pipeline *behind* a live server must surface on the wire as typed
//! error responses or flagged degradations — never hangs, never
//! connection drops, never a poisoned server.
//!
//! This extends the robustness contract of `tests/chaos.rs` (typed
//! errors / flagged outcomes at the library boundary) across the
//! network boundary: a serving client sees the same taxonomy, one
//! protocol layer up.

use std::sync::Arc;
use std::time::Duration;

use td_algorithms::algorithm_by_name;
use td_model::{DatasetBuilder, Value};
use td_serve::{
    Client, ResponseBody, ServeConfig, Server, WireClaim, WireErrorKind,
};
use td_verify::ChaosHook;
use tdac_core::{
    CancelToken, ExecutionLimits, RepartitionPolicy, TdacConfig, TdacSession,
    TruthQuery,
};

/// Planted two-group dataset with `n` objects.
fn dataset(n: i64) -> td_model::Dataset {
    let mut b = DatasetBuilder::new();
    for o in 0..n {
        let obj = format!("obj-{o}");
        for (ai, attr) in ["g1a", "g1b", "g2a", "g2b"].iter().enumerate() {
            let truth = o * 10 + ai as i64;
            let noise = 5_000 + o * 10 + ai as i64;
            let (a_val, b_val) =
                if ai < 2 { (truth, noise) } else { (noise, truth) };
            b.claim("src-a", &obj, *attr, Value::int(a_val)).unwrap();
            b.claim("src-b", &obj, *attr, Value::int(b_val)).unwrap();
            b.claim("src-c", &obj, *attr, Value::int(truth)).unwrap();
        }
    }
    b.build()
}

/// One fresh-object wire batch disjoint from `dataset(n)`.
fn batch(o: i64) -> Vec<WireClaim> {
    let obj = format!("obj-{o}");
    ["g1a", "g1b", "g2a", "g2b"]
        .iter()
        .enumerate()
        .flat_map(|(ai, attr)| {
            let truth = o * 10 + ai as i64;
            [
                ("src-a", truth),
                ("src-b", 5_000 + truth),
                ("src-c", truth),
            ]
            .map(|(s, v)| WireClaim {
                source: s.to_string(),
                object: obj.clone(),
                attribute: attr.to_string(),
                value: Value::int(v),
            })
        })
        .collect()
}

fn serve_with(config: TdacConfig) -> (Server, Client) {
    let session = TdacSession::start(
        algorithm_by_name("majorityvote").unwrap(),
        config,
        RepartitionPolicy::Always,
        dataset(5),
    )
    .expect("session starts");
    let server = Server::bind(
        "127.0.0.1:0",
        session,
        ServeConfig {
            max_inflight: 8,
            workers: 2,
            default_deadline_ms: None,
        },
    )
    .expect("server binds");
    let client = Client::connect(server.local_addr()).expect("client connects");
    (server, client)
}

#[test]
fn injected_worker_panic_is_a_typed_internal_error_and_server_survives() {
    // Hit 2: the served ingest's re-sweep (hit 1 is the start pass).
    let hook = ChaosHook::panics_at("k_sweep", 2);
    let config = TdacConfig::builder()
        .observer(hook.observer())
        .build()
        .expect("valid config");
    let (mut server, mut client) = serve_with(config);

    let resp = client.ingest(batch(5), None).expect("the wire stays up");
    assert!(hook.fired(), "the panic actually fired");
    let ResponseBody::Error(err) = resp.body else {
        panic!("a poisoned ingest must be a typed error, got {:?}", resp.body);
    };
    assert_eq!(err.kind, WireErrorKind::Internal);
    assert!(
        err.message.contains("panic"),
        "the error names the failure: {}",
        err.message
    );

    // The server survives the panic: the dataset kept the batch (the
    // session invalidates caches, not data), the next ingest rebuilds,
    // and queries keep answering.
    let resp = client.ingest(batch(6), None).expect("wire still up");
    assert!(
        matches!(resp.body, ResponseBody::Ingest(_)),
        "post-panic ingest recovers: {:?}",
        resp.body
    );
    let resp = client
        .query(TruthQuery::All, Some(10_000))
        .expect("wire still up");
    let ResponseBody::Query(q) = resp.body else {
        panic!("expected query body, got {:?}", resp.body);
    };
    assert!(q.degradation.is_none(), "the recovered generation is complete");
    server.shutdown();
}

#[test]
fn injected_cancellation_is_a_flagged_degradation_not_a_hang() {
    // The session's own limits carry a cancel token the chaos hook
    // trips mid-sweep of the served ingest. The server layers request
    // deadlines *on top of* these base limits, so the token survives
    // per-request overrides.
    let token = CancelToken::new();
    let hook = ChaosHook::cancels_at("k_sweep", 2, token.clone());
    let config = TdacConfig::builder()
        .observer(hook.observer())
        .limits(ExecutionLimits::none().with_cancel(token))
        .build()
        .expect("valid config");
    let (mut server, mut client) = serve_with(config);

    let resp = client
        .ingest(batch(5), Some(30_000))
        .expect("the wire stays up");
    assert!(hook.fired(), "the cancel actually fired");
    let ResponseBody::Ingest(ack) = resp.body else {
        panic!("a cancelled ingest still acks, flagged: {:?}", resp.body);
    };
    let deg = ack
        .degradation
        .expect("cancellation mid-ingest must flag the new generation");
    assert_eq!(format!("{:?}", deg.reason), "Cancelled");

    // Queries against the degraded generation carry the flag; the
    // server never hangs on the tripped token.
    let resp = client
        .query(TruthQuery::All, Some(10_000))
        .expect("wire still up");
    assert_eq!(resp.generation, 1);
    let ResponseBody::Query(q) = resp.body else {
        panic!("expected query body, got {:?}", resp.body);
    };
    assert!(
        q.degradation.is_some(),
        "answers from the cancelled generation must be flagged"
    );
    server.shutdown();
}

#[test]
fn overload_rejections_never_leak_admission_slots() {
    // Sequential hammering against max_inflight = 1: every request
    // that reaches the handler is admitted (the previous one released
    // its slot), so nothing is rejected and nothing leaks — the RAII
    // guard's release is exercised hundreds of times.
    let session = TdacSession::start(
        algorithm_by_name("majorityvote").unwrap(),
        TdacConfig::default(),
        RepartitionPolicy::Always,
        dataset(5),
    )
    .expect("session starts");
    let mut server = Server::bind(
        "127.0.0.1:0",
        session,
        ServeConfig {
            max_inflight: 1,
            workers: 1,
            default_deadline_ms: None,
        },
    )
    .expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    for i in 0..200 {
        let resp = client
            .query(TruthQuery::All, Some(10_000))
            .expect("wire stays up");
        assert!(
            matches!(resp.body, ResponseBody::Query(_)),
            "sequential request {i} was rejected — a slot leaked: {:?}",
            resp.body
        );
    }
    server.shutdown();
}

/// td-verify's chaos delay helper needs an Arc to inspect `fired`;
/// re-exported sanity check that the serve tests' nth-hit arithmetic
/// (start pass = hit 1) holds — if the pipeline ever stops sweeping on
/// start, the serve chaos tests above would silently stop injecting.
#[test]
fn start_pass_hits_the_sweep_once() {
    let hook: Arc<ChaosHook> =
        ChaosHook::delays_at("k_sweep", 99, Duration::ZERO);
    let config = TdacConfig::builder()
        .observer(hook.observer())
        .build()
        .expect("valid config");
    let _session = TdacSession::start(
        algorithm_by_name("majorityvote").unwrap(),
        config,
        RepartitionPolicy::Always,
        dataset(5),
    )
    .expect("session starts");
    assert_eq!(hook.hits(), 1, "start runs exactly one k-sweep");
}
