//! Metamorphic invariants over randomly generated claim sets: input
//! transformations that must not change (or must change in a known
//! direction) the pipeline's observable outputs.
//!
//! Identifier interning makes raw ids sensitive to first-appearance
//! order, so the properties compare *resolved* facts — names and
//! [`td_model::Value`]s — with confidences still compared bitwise
//! (MajorityVote computes integer vote ratios, which are exact).

use std::collections::BTreeMap;

use proptest::prelude::*;
use td_algorithms::{MajorityVote, TruthDiscovery, TruthResult};
use td_model::stats::data_coverage_rate;
use td_model::{AttributeId, Dataset, DatasetBuilder, ObjectId, Value, ValueId};
use td_verify::oracle::{check_tdac_consistency, check_thread_invariance};
use td_verify::worlds::separable_world;

const N_SOURCES: u32 = 4;
const N_OBJECTS: u32 = 4;
const N_ATTRS: u32 = 5;
const N_VALUES: u32 = 6;

/// A raw claim quadruple `(source, object, attribute, value)`.
type Quad = (u32, u32, u32, u32);

fn quads() -> impl Strategy<Value = Vec<Quad>> {
    proptest::collection::vec(
        (0u32..N_SOURCES, 0u32..N_OBJECTS, 0u32..N_ATTRS, 0u32..N_VALUES),
        1..40,
    )
}

/// Keeps the first claim per `(source, object, attribute)` cell slot, so
/// rebuilding any permutation of the list is conflict-free.
fn dedupe(claims: &[Quad]) -> Vec<Quad> {
    let mut seen = std::collections::HashSet::new();
    claims
        .iter()
        .filter(|&&(s, o, a, _)| seen.insert((s, o, a)))
        .copied()
        .collect()
}

/// Builds a dataset with all identifier namespaces pre-registered in a
/// fixed order, so interned ids do not depend on claim order.
fn build(claims: &[Quad]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for s in 0..N_SOURCES {
        b.source(&format!("s{s}"));
    }
    for o in 0..N_OBJECTS {
        b.object(&format!("o{o}"));
    }
    for a in 0..N_ATTRS {
        b.attribute(&format!("a{a}"));
    }
    // Values too: MajorityVote breaks vote ties toward the smallest
    // ValueId, so tie outcomes are only order-independent if value
    // interning order is fixed up front.
    for v in 0..N_VALUES {
        b.value(Value::int(v as i64));
    }
    for &(s, o, a, v) in claims {
        b.claim(
            &format!("s{s}"),
            &format!("o{o}"),
            &format!("a{a}"),
            Value::int(v as i64),
        )
        .expect("claims are deduped per cell slot");
    }
    b.build()
}

/// The resolved (interning-independent) image of a result's predictions:
/// `(object name, attribute name) → (value, confidence bits)`.
fn resolved(dataset: &Dataset, result: &TruthResult) -> BTreeMap<(String, String), (Value, u64)> {
    result
        .iter()
        .map(|(o, a, v, c)| {
            (
                (
                    dataset.object_name(o).to_string(),
                    dataset.attribute_name(a).to_string(),
                ),
                (dataset.value(v).clone(), c.to_bits()),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shuffling the claim feed must not change anything: the builder
    /// canonicalizes claims, so voting results are bit-identical.
    #[test]
    fn claim_order_shuffling_is_invariant(claims in quads(), rot in 0usize..40) {
        let claims = dedupe(&claims);
        let mut shuffled = claims.clone();
        shuffled.reverse();
        let len = shuffled.len().max(1);
        shuffled.rotate_left(rot % len);
        let (a, b) = (build(&claims), build(&shuffled));
        let (ra, rb) = (
            MajorityVote.discover(&a.view_all()),
            MajorityVote.discover(&b.view_all()),
        );
        prop_assert_eq!(resolved(&a, &ra), resolved(&b, &rb));
        let ta: Vec<u64> = ra.source_trust.iter().map(|t| t.to_bits()).collect();
        let tb: Vec<u64> = rb.source_trust.iter().map(|t| t.to_bits()).collect();
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(
            data_coverage_rate(&a).to_bits(),
            data_coverage_rate(&b).to_bits()
        );
    }

    /// Renaming the sources (a permutation) must permute the trust
    /// vector and leave every prediction untouched.
    #[test]
    fn source_relabeling_permutes_trust_only(claims in quads(), shift in 1u32..4) {
        let claims = dedupe(&claims);
        let perm = |s: u32| (s + shift) % N_SOURCES;
        let relabeled: Vec<Quad> =
            claims.iter().map(|&(s, o, a, v)| (perm(s), o, a, v)).collect();
        let (base, renamed) = (build(&claims), build(&relabeled));
        let (rb, rr) = (
            MajorityVote.discover(&base.view_all()),
            MajorityVote.discover(&renamed.view_all()),
        );
        prop_assert_eq!(resolved(&base, &rb), resolved(&renamed, &rr));
        for s in 0..N_SOURCES {
            prop_assert_eq!(
                rb.source_trust[s as usize].to_bits(),
                rr.source_trust[perm(s) as usize].to_bits(),
                "trust of s{} must move with the relabeling", s
            );
        }
    }

    /// Renaming the objects must carry each cell's prediction along.
    #[test]
    fn object_relabeling_carries_predictions(claims in quads(), shift in 1u32..4) {
        let claims = dedupe(&claims);
        let perm = |o: u32| (o + shift) % N_OBJECTS;
        let relabeled: Vec<Quad> =
            claims.iter().map(|&(s, o, a, v)| (s, perm(o), a, v)).collect();
        let (base, renamed) = (build(&claims), build(&relabeled));
        let (rb, rr) = (
            MajorityVote.discover(&base.view_all()),
            MajorityVote.discover(&renamed.view_all()),
        );
        let mapped: BTreeMap<_, _> = resolved(&base, &rb)
            .into_iter()
            .map(|((o, a), val)| {
                let idx: u32 = o.trim_start_matches('o').parse().expect("oN name");
                ((format!("o{}", perm(idx)), a), val)
            })
            .collect();
        prop_assert_eq!(mapped, resolved(&renamed, &rr));
    }

    /// Re-asserting existing claims is a no-op: the duplicated feed
    /// builds the same dataset, results, and DCR.
    #[test]
    fn duplicate_claims_are_idempotent(claims in quads()) {
        let claims = dedupe(&claims);
        let doubled: Vec<Quad> =
            claims.iter().chain(claims.iter()).copied().collect();
        let (once, twice) = (build(&claims), build(&doubled));
        prop_assert_eq!(once.n_claims(), twice.n_claims());
        let (ro, rt) = (
            MajorityVote.discover(&once.view_all()),
            MajorityVote.discover(&twice.view_all()),
        );
        prop_assert_eq!(resolved(&once, &ro), resolved(&twice, &rt));
        prop_assert_eq!(
            data_coverage_rate(&once).to_bits(),
            data_coverage_rate(&twice).to_bits()
        );
    }

    /// Removing a claim whose source keeps other claims on the object
    /// and whose cell keeps other claims leaves `|S_o|` and `|A_o|`
    /// intact while emptying one `(source, attribute)` slot — DCR must
    /// *strictly* decrease (coverage monotonicity, paper §4.4).
    #[test]
    fn dcr_strictly_decreases_when_a_covered_claim_is_removed(claims in quads()) {
        let claims = dedupe(&claims);
        let removable = claims.iter().position(|&(s, o, a, _)| {
            let source_keeps_object = claims
                .iter()
                .any(|&(s2, o2, a2, _)| s2 == s && o2 == o && a2 != a);
            let cell_keeps_claims = claims
                .iter()
                .any(|&(s2, o2, a2, _)| o2 == o && a2 == a && s2 != s);
            source_keeps_object && cell_keeps_claims
        });
        // Sparse draws may have no removable claim; the property is
        // vacuously true there.
        if let Some(i) = removable {
            let mut fewer = claims.clone();
            fewer.remove(i);
            let before = data_coverage_rate(&build(&claims));
            let after = data_coverage_rate(&build(&fewer));
            prop_assert!(
                after < before,
                "removing a guarded claim must lower DCR: {before} -> {after}"
            );
        }
    }

    /// `merge_all` over disjoint partials is order-insensitive:
    /// predictions and iteration count exactly, mean trust to within
    /// float summation reorder error.
    #[test]
    fn merge_all_is_permutation_invariant(
        trusts in proptest::collection::vec(0.0f64..1.0, 2..6),
        rot in 1usize..6,
    ) {
        let n_sources = 3;
        let partials: Vec<TruthResult> = trusts
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut p = TruthResult::with_sources(n_sources, t);
                // Disjoint cells: partial i owns attribute i.
                p.set_prediction(
                    ObjectId::new(0),
                    AttributeId::new(i as u32),
                    ValueId::new(i as u32),
                    t,
                );
                p.iterations = i as u32;
                p
            })
            .collect();
        let mut rotated = partials.clone();
        rotated.rotate_left(rot % partials.len());
        let (a, b) = (TruthResult::merge_all(&partials), TruthResult::merge_all(&rotated));
        let rows = |r: &TruthResult| -> BTreeMap<(ObjectId, AttributeId), (ValueId, u64)> {
            r.iter().map(|(o, at, v, c)| ((o, at), (v, c.to_bits()))).collect()
        };
        prop_assert_eq!(rows(&a), rows(&b));
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.source_trust.len(), b.source_trust.len());
        for (x, y) in a.source_trust.iter().zip(&b.source_trust) {
            prop_assert!((x - y).abs() < 1e-12, "trust {x} vs {y}");
        }
    }

    /// Random separable worlds: TD-AC must replay its chosen partition
    /// bit-for-bit and agree with itself across thread counts.
    #[test]
    fn tdac_determinism_on_random_worlds(
        sizes in proptest::collection::vec(1usize..4, 2..4),
        n_objects in 2usize..5,
    ) {
        let world = separable_world(&sizes, n_objects);
        check_tdac_consistency(&MajorityVote, &world.dataset);
        check_thread_invariance(&MajorityVote, &world.dataset, &[2]);
    }

    /// TD-AC(MV) equals the global vote on arbitrary random claim sets,
    /// not just curated worlds (partition invariance of per-cell
    /// algorithms).
    #[test]
    fn majority_partition_invariance_on_random_claims(claims in quads()) {
        let dataset = build(&dedupe(&claims));
        if dataset.n_attributes() > 0 {
            td_verify::oracle::check_majority_partition_invariance(&dataset);
        }
    }
}
