//! Chaos oracles: faults injected at phase boundaries through
//! [`td_verify::ChaosHook`] must uphold the robustness contract of the
//! execution-limits layer (`docs/ROBUSTNESS.md`):
//!
//! * **(a) no escape, no lies** — every injected panic surfaces as a
//!   typed `WorkerPanic` naming the phase; every injected stall or
//!   cancellation yields an `Ok` outcome *flagged* with a
//!   [`Degradation`] record whose result is still a sound merged
//!   truth-discovery answer. Never an abort, never a silently wrong
//!   result.
//! * **(b) invisible when off** — with limits disabled (or merely
//!   generous), the pipeline is bit-identical to the committed DS1
//!   golden; the robustness layer may not move a single output bit.
//! * **(c) deterministic degradation** — counter-budget degraded
//!   outcomes are bit-identical at `Threads(1)` / `(2)` / `(8)` /
//!   `Auto`.
//!
//! [`Degradation`]: tdac_core::Degradation

use std::time::Duration;

use td_algorithms::{Accu, MajorityVote, TruthDiscovery};
use td_verify::golden::{check_ds1, compute_ds1, compute_ds1_with, diff_ds1};
use td_verify::worlds::separable_world;
use td_verify::{ChaosHook, OutcomeFingerprint, ResultFingerprint};
use tdac_core::{
    AccuGenError, AccuGenPartition, CancelToken, DegradationReason, ExecutionBackend,
    ExecutionLimits, Parallelism,
    Tdac, TdacConfig, TdacError,
};

/// `0` means [`Parallelism::Auto`].
const THREADS: &[usize] = &[1, 2, 8, 0];

fn parallelism(threads: usize) -> Parallelism {
    if threads == 0 {
        Parallelism::Auto
    } else {
        Parallelism::Threads(threads)
    }
}

// ---------------------------------------------------------------- (a) —

#[test]
fn injected_worker_panics_surface_as_typed_errors_naming_the_phase() {
    let world = separable_world(&[2, 2], 4);
    // Faults inside isolated task boundaries are attributed precisely;
    // at any thread count the first error in k / group order wins, so
    // the phase string is deterministic.
    for (target, want_phase) in [
        ("k_sweep/k=2", "k_sweep/k=2"),
        ("per_group_run/group=0", "per_group_run/group=0"),
    ] {
        for &threads in THREADS {
            let hook = ChaosHook::panics_at(target, 1);
            let config = TdacConfig {
                observer: hook.observer(),
                backend: ExecutionBackend::in_process(parallelism(threads)),
                ..TdacConfig::default()
            };
            let err = Tdac::new(config)
                .run(&MajorityVote, &world.dataset)
                .expect_err("the injected panic must become an error");
            assert!(hook.fired(), "{target}: fault never reached");
            match err {
                TdacError::WorkerPanic { phase, detail } => {
                    assert_eq!(phase, want_phase, "threads={threads}");
                    assert!(detail.contains("chaos: injected panic"), "{detail}");
                }
                other => panic!("{target}: wanted WorkerPanic, got {other}"),
            }
        }
    }
}

#[test]
fn sequential_spine_panics_are_caught_at_the_pipeline_boundary() {
    // `truth_vectors` and `merge` run on the sequential spine, outside
    // any per-task boundary — the top-level catch must still convert
    // them, attributed to the pipeline as a whole.
    let world = separable_world(&[2, 2], 4);
    for target in ["truth_vectors", "merge"] {
        let hook = ChaosHook::panics_at(target, 1);
        let config = TdacConfig {
            observer: hook.observer(),
            ..TdacConfig::default()
        };
        let err = Tdac::new(config)
            .run(&MajorityVote, &world.dataset)
            .expect_err("the injected panic must become an error");
        assert!(hook.fired(), "{target}: fault never reached");
        match err {
            TdacError::WorkerPanic { phase, .. } => assert_eq!(phase, "pipeline", "{target}"),
            other => panic!("{target}: wanted WorkerPanic, got {other}"),
        }
    }
}

#[test]
fn clusterer_panics_are_attributed_to_their_k() {
    let world = separable_world(&[2, 2], 4);
    // Sequentially the first `cluster` span belongs to k = 2; in a pool
    // the panicking k is scheduling-dependent but the attribution shape
    // is not.
    let hook = ChaosHook::panics_at("cluster", 1);
    let config = TdacConfig {
        observer: hook.observer(),
        backend: ExecutionBackend::in_process(Parallelism::Threads(1)),
        ..TdacConfig::default()
    };
    match Tdac::new(config).run(&MajorityVote, &world.dataset) {
        Err(TdacError::WorkerPanic { phase, .. }) => assert_eq!(phase, "k_sweep/k=2"),
        other => panic!("wanted WorkerPanic, got {other:?}"),
    }
    let hook = ChaosHook::panics_at("cluster", 1);
    let config = TdacConfig {
        observer: hook.observer(),
        ..TdacConfig::default()
    };
    match Tdac::new(config).run(&MajorityVote, &world.dataset) {
        Err(TdacError::WorkerPanic { phase, .. }) => {
            assert!(phase.starts_with("k_sweep/k="), "got phase {phase:?}");
        }
        other => panic!("wanted WorkerPanic, got {other:?}"),
    }
}

#[test]
fn accugen_scan_panics_are_typed_and_name_the_partition() {
    let world = separable_world(&[2, 2], 4);
    // Sequentially the second `partition_scan/partition` checkpoint is
    // enumeration index 1; under a pool the smallest panicking index
    // wins the reduction, so the attribution stays of the same shape.
    let hook = ChaosHook::panics_at("partition_scan/partition", 2);
    let accugen = AccuGenPartition {
        parallelism: Parallelism::Threads(1),
        observer: hook.observer(),
        ..AccuGenPartition::default()
    };
    match accugen.run_oracle(&MajorityVote, &world.dataset, &world.truth) {
        Err(AccuGenError::WorkerPanic { phase, detail }) => {
            assert_eq!(phase, "partition_scan/partition=1");
            assert!(detail.contains("chaos: injected panic"), "{detail}");
        }
        other => panic!("wanted WorkerPanic, got {other:?}"),
    }
    let hook = ChaosHook::panics_at("partition_scan/partition", 2);
    let accugen = AccuGenPartition {
        observer: hook.observer(),
        ..AccuGenPartition::default()
    };
    match accugen.run_oracle(&MajorityVote, &world.dataset, &world.truth) {
        Err(AccuGenError::WorkerPanic { phase, .. }) => {
            assert!(phase.starts_with("partition_scan/partition="), "got {phase:?}");
        }
        other => panic!("wanted WorkerPanic, got {other:?}"),
    }
}

#[test]
fn chaos_cancellation_yields_a_flagged_sound_outcome() {
    // A cancel fired at the sweep boundary must stop the run *and* hand
    // back the already-computed reference result, flagged — never an
    // error, never an unflagged partial answer.
    let world = separable_world(&[2, 2], 5);
    let reference = ResultFingerprint::of(&MajorityVote.discover(&world.dataset.view_all()));
    for &threads in THREADS {
        let token = CancelToken::new();
        let hook = ChaosHook::cancels_at("k_sweep", 1, token.clone());
        let config = TdacConfig {
            observer: hook.observer(),
            backend: ExecutionBackend::in_process(parallelism(threads)),
            limits: ExecutionLimits::none().with_cancel(token),
            ..TdacConfig::default()
        };
        let outcome = Tdac::new(config)
            .run(&MajorityVote, &world.dataset)
            .expect("cancellation degrades, it does not error");
        assert!(hook.fired());
        let deg = outcome.degradation.as_ref().expect("must be flagged");
        assert_eq!(deg.reason, DegradationReason::Cancelled, "threads={threads}");
        assert!(outcome.fallback, "best-so-far is the un-partitioned run");
        assert_eq!(
            ResultFingerprint::of(&outcome.result),
            reference,
            "the degraded result must be the sound reference bits"
        );
    }
}

#[test]
fn chaos_stall_trips_the_deadline_into_a_flagged_best_so_far() {
    // A stall injected before the distance-matrix build blows a 25 ms
    // deadline long before the sweep starts: every k is skipped and the
    // reference result comes back flagged with the deadline reason.
    let world = separable_world(&[2, 2], 4);
    let reference = ResultFingerprint::of(&MajorityVote.discover(&world.dataset.view_all()));
    let hook = ChaosHook::delays_at("distance_matrix", 1, Duration::from_millis(200));
    let config = TdacConfig {
        observer: hook.observer(),
        limits: ExecutionLimits::none().with_deadline(Duration::from_millis(25)),
        ..TdacConfig::default()
    };
    let outcome = Tdac::new(config)
        .run(&MajorityVote, &world.dataset)
        .expect("a blown deadline degrades, it does not error");
    assert!(hook.fired());
    let deg = outcome.degradation.expect("must be flagged");
    assert_eq!(deg.reason, DegradationReason::Deadline(25));
    assert_eq!(deg.phase, "k_sweep");
    assert_eq!(ResultFingerprint::of(&outcome.result), reference);
}

#[test]
fn delays_without_limits_never_change_the_bits() {
    // With no budget armed, a stall is just latency: the outcome must
    // be bit-identical to the clean run and must not be flagged.
    let world = separable_world(&[2, 2], 4);
    let clean = OutcomeFingerprint::of(
        &Tdac::new(TdacConfig::default())
            .run(&MajorityVote, &world.dataset)
            .expect("clean run"),
    );
    let hook = ChaosHook::delays_at("k_sweep/", 1, Duration::from_millis(20));
    let config = TdacConfig {
        observer: hook.observer(),
        ..TdacConfig::default()
    };
    let outcome = Tdac::new(config)
        .run(&MajorityVote, &world.dataset)
        .expect("stalled run");
    assert!(hook.fired());
    assert!(outcome.degradation.is_none(), "no budget, no flag");
    assert_eq!(OutcomeFingerprint::of(&outcome), clean);
}

// ---------------------------------------------------------------- (b) —

#[test]
fn limits_machinery_is_invisible_on_the_ds1_golden() {
    // Disabled limits: the committed golden still matches bit-for-bit.
    check_ds1().expect("DS1 golden with limits disabled");
    // Generous limits arm the full budget machinery (probes, precharge,
    // private observer) without ever firing — and may not move a bit.
    let generous = ExecutionLimits::none()
        .with_deadline(Duration::from_secs(3_600))
        .with_max_distance_evals(u64::MAX / 2)
        .with_max_fixpoint_iterations(u64::MAX / 2)
        .with_max_partitions(u64::MAX / 2);
    let plain = compute_ds1();
    let limited = compute_ds1_with(&TdacConfig {
        limits: generous,
        ..TdacConfig::default()
    });
    if let Some(diff) = diff_ds1(&plain, &limited) {
        panic!("arming generous limits moved a DS1 golden field: {diff}");
    }
}

// ---------------------------------------------------------------- (c) —

#[test]
fn counter_budget_degraded_outcomes_are_bit_identical_at_any_thread_count() {
    // A fixpoint cap trips on deterministic counter values, so the
    // degraded outcome — result bits, reason, phase — must not depend
    // on the thread count.
    let world = separable_world(&[2, 2], 5);
    let runs: Vec<_> = THREADS
        .iter()
        .map(|&threads| {
            let config = TdacConfig {
                backend: ExecutionBackend::in_process(parallelism(threads)),
                limits: ExecutionLimits::none().with_max_fixpoint_iterations(1),
                ..TdacConfig::default()
            };
            let outcome = Tdac::new(config)
                .run(&Accu::default(), &world.dataset)
                .expect("a tripped counter budget degrades, it does not error");
            let deg = outcome.degradation.clone().expect("must be flagged");
            (OutcomeFingerprint::of(&outcome), deg.reason, deg.phase)
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(run, &runs[0]);
    }
}

#[test]
fn truncated_accugen_scans_are_bit_identical_at_any_thread_count() {
    // The partition cap truncates the Bell enumeration to an exact
    // prefix; the winner over that prefix is thread-count invariant.
    let world = separable_world(&[2, 2], 5);
    let runs: Vec<_> = THREADS
        .iter()
        .map(|&threads| {
            let accugen = AccuGenPartition {
                parallelism: parallelism(threads),
                limits: ExecutionLimits::none().with_max_partitions(5),
                ..AccuGenPartition::default()
            };
            let outcome = accugen
                .run_oracle(&MajorityVote, &world.dataset, &world.truth)
                .expect("a capped scan degrades, it does not error");
            assert_eq!(outcome.n_partitions, 5, "exact prefix");
            let deg = outcome.degradation.clone().expect("must be flagged");
            (OutcomeFingerprint::of_accugen(&outcome), deg.reason, deg.phase)
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(run, &runs[0]);
    }
}
