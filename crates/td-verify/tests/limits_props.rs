//! Property tests for the execution-limits layer: budget monotonicity
//! and the work-never-exceeds-limits invariants, over randomly drawn
//! budget caps (satellite of the robustness PR; see
//! `docs/ROBUSTNESS.md`).
//!
//! The worlds are fixed and tiny — the randomness that matters here is
//! the *cap*, which sweeps the boundary between "budget is generous and
//! must be invisible" and "budget trips and must degrade soundly".

use proptest::prelude::*;
use td_algorithms::{Accu, MajorityVote, TruthDiscovery};
use td_verify::worlds::separable_world;
use td_verify::{OutcomeFingerprint, ResultFingerprint};
use tdac_core::{
    AccuGenPartition, DegradationReason, ExecutionLimits, Tdac, TdacConfig,
};

/// Bell(4): the number of partitions of the 4-attribute test world.
const BELL_4: u64 = 15;

fn capped_scan(cap: u64) -> tdac_core::AccuGenOutcome {
    let world = separable_world(&[2, 2], 4);
    let accugen = AccuGenPartition {
        limits: ExecutionLimits::none().with_max_partitions(cap),
        ..AccuGenPartition::default()
    };
    accugen
        .run_oracle(&MajorityVote, &world.dataset, &world.truth)
        .expect("a capped scan degrades, it does not error")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition cap truncates the enumeration to an exact prefix,
    /// so the best score over the prefix is monotone non-decreasing in
    /// the cap — a larger budget can only find an equal-or-better
    /// partition, never a worse one.
    #[test]
    fn accugen_score_is_monotone_in_the_partition_cap(
        cap in 1u64..=BELL_4 + 3,
        extra in 0u64..=5,
    ) {
        let small = capped_scan(cap);
        let large = capped_scan(cap + extra);
        prop_assert!(
            large.score >= small.score,
            "cap {} scored {}, cap {} scored {}",
            cap, small.score, cap + extra, large.score,
        );
    }

    /// Exact-prefix accounting: `n_partitions` is `min(cap, Bell)`, the
    /// outcome is flagged exactly when the cap bit into the enumeration,
    /// and the recorded work never exceeds the cap.
    #[test]
    fn accugen_work_never_exceeds_the_partition_cap(cap in 1u64..=BELL_4 + 5) {
        let outcome = capped_scan(cap);
        prop_assert_eq!(outcome.n_partitions, cap.min(BELL_4));
        match outcome.degradation {
            Some(deg) => {
                prop_assert!(cap < BELL_4, "generous cap ({cap}) must not flag");
                prop_assert_eq!(deg.reason, DegradationReason::Partitions(cap));
                prop_assert!(
                    deg.work.partitions_scanned <= cap,
                    "scanned {} > cap {cap}", deg.work.partitions_scanned,
                );
            }
            None => prop_assert!(cap >= BELL_4, "tight cap ({cap}) must flag"),
        }
    }

    /// Distance evaluations are pre-charged: a matrix build that cannot
    /// fit under the cap never starts, so the recorded distance work
    /// never exceeds the cap — and a cap the run fits under must leave
    /// the outcome bit-identical to the unlimited run, unflagged.
    #[test]
    fn tdac_work_never_exceeds_the_distance_cap(cap in 1u64..=12) {
        let world = separable_world(&[2, 2], 4);
        let unlimited = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, &world.dataset)
            .expect("unlimited run");
        let config = TdacConfig {
            limits: ExecutionLimits::none().with_max_distance_evals(cap),
            ..TdacConfig::default()
        };
        let outcome = Tdac::new(config)
            .run(&MajorityVote, &world.dataset)
            .expect("a tripped budget degrades, it does not error");
        match outcome.degradation.clone() {
            Some(deg) => {
                prop_assert_eq!(deg.reason, DegradationReason::DistanceEvals(cap));
                prop_assert!(
                    deg.work.distance_evals <= cap,
                    "evaluated {} > cap {cap}", deg.work.distance_evals,
                );
                // The best-so-far answer is the sound reference bits.
                prop_assert_eq!(
                    ResultFingerprint::of(&outcome.result),
                    ResultFingerprint::of(&MajorityVote.discover(&world.dataset.view_all())),
                );
            }
            None => prop_assert_eq!(
                OutcomeFingerprint::of(&outcome),
                OutcomeFingerprint::of(&unlimited),
            ),
        }
    }
}

proptest! {
    // The fixpoint property runs a real Accu fixpoint per case; fewer
    // cases keep the suite inside the tier-1 time budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fixpoint cap either never fires (outcome bit-identical to the
    /// unlimited run) or degrades at a *sequential* phase boundary with
    /// the reference result — never a partial merge.
    #[test]
    fn tdac_fixpoint_caps_degrade_only_at_sequential_boundaries(cap in 1u64..=40) {
        let world = separable_world(&[2, 2], 4);
        let base = Accu::default();
        let unlimited = Tdac::new(TdacConfig::default())
            .run(&base, &world.dataset)
            .expect("unlimited run");
        let config = TdacConfig {
            limits: ExecutionLimits::none().with_max_fixpoint_iterations(cap),
            ..TdacConfig::default()
        };
        let outcome = Tdac::new(config)
            .run(&base, &world.dataset)
            .expect("a tripped budget degrades, it does not error");
        match outcome.degradation.clone() {
            Some(deg) => {
                prop_assert_eq!(deg.reason, DegradationReason::FixpointIterations(cap));
                prop_assert!(
                    deg.phase == "truth_vectors" || deg.phase == "per_group_run",
                    "unexpected detection phase {:?}", deg.phase,
                );
                // Degraded outcomes normalize `iterations` to 1 (the
                // outer-merge convention); the predictions and trust
                // vector must still be the sound reference bits.
                let mut reference = base.discover(&world.dataset.view_all());
                reference.iterations = 1;
                prop_assert_eq!(
                    ResultFingerprint::of(&outcome.result),
                    ResultFingerprint::of(&reference),
                );
            }
            None => prop_assert_eq!(
                OutcomeFingerprint::of(&outcome),
                OutcomeFingerprint::of(&unlimited),
            ),
        }
    }
}
