//! Differential oracles: TD-AC against the exhaustive AccuGenPartition
//! search, against a replay of its own chosen partition, and against
//! partition-independent baselines.
//!
//! The fast corpus covers |A| ≤ 6 (Bell(6) = 203 partitions per oracle
//! sweep). The |A| = 7 / 8 cases — 877 and 4140 partitions — live
//! behind the `expensive-oracles` feature:
//! `cargo test -p td-verify --features expensive-oracles`.

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, MajorityVote};
use td_verify::oracle::{
    check_accugen_majority_invariance, check_majority_partition_invariance,
    check_oracle_dominance, check_small_world_exact, check_tdac_consistency,
};
use td_verify::worlds::standard_worlds;

#[test]
fn tdac_ties_the_exhaustive_oracle_on_separable_worlds() {
    for world in standard_worlds() {
        check_small_world_exact(&MajorityVote, &world);
    }
}

#[test]
fn tdac_ties_the_oracle_with_an_iterative_base() {
    for world in standard_worlds() {
        check_small_world_exact(&Accu::default(), &world);
    }
}

#[test]
fn majority_vote_is_partition_invariant_on_any_dataset() {
    // Per-cell voting cannot see the attribute partition, so TD-AC(MV)
    // must equal the global vote on arbitrary (non-separable,
    // noisy) data — all three synthetic presets included.
    for config in [
        SyntheticConfig::ds1().scaled(40),
        SyntheticConfig::ds2().scaled(40),
        SyntheticConfig::ds3().scaled(40),
    ] {
        let world = generate_synthetic(&config);
        check_majority_partition_invariance(&world.dataset);
    }
    for world in standard_worlds() {
        check_majority_partition_invariance(&world.dataset);
    }
}

#[test]
fn accugen_majority_agrees_with_the_global_vote() {
    for world in standard_worlds() {
        check_accugen_majority_invariance(&world.dataset);
    }
}

#[test]
fn exhaustive_oracle_dominates_tdac() {
    // The oracle maximizes accuracy over every partition, TD-AC picks
    // one — dominance is exact, even on noisy non-separable data.
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(25));
    check_oracle_dominance(&MajorityVote, &ds1.dataset, &ds1.truth);
    check_oracle_dominance(&Accu::default(), &ds1.dataset, &ds1.truth);
    for world in standard_worlds() {
        check_oracle_dominance(&MajorityVote, &world.dataset, &world.truth);
        check_oracle_dominance(&Accu::default(), &world.dataset, &world.truth);
    }
}

#[test]
fn tdac_replays_its_own_partition_bit_for_bit() {
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(60));
    check_tdac_consistency(&MajorityVote, &ds1.dataset);
    check_tdac_consistency(&Accu::default(), &ds1.dataset);
    for world in standard_worlds() {
        check_tdac_consistency(&MajorityVote, &world.dataset);
        check_tdac_consistency(&Accu::default(), &world.dataset);
    }
}

#[cfg(feature = "expensive-oracles")]
mod expensive {
    use super::*;
    use td_verify::worlds::expensive_worlds;

    #[test]
    fn bell_7_and_8_oracles_still_tie_tdac() {
        for world in expensive_worlds() {
            check_small_world_exact(&MajorityVote, &world);
            check_oracle_dominance(&MajorityVote, &world.dataset, &world.truth);
            check_tdac_consistency(&MajorityVote, &world.dataset);
        }
    }

    #[test]
    fn bell_7_oracle_ties_with_an_iterative_base() {
        // Accu over 877 partitions; the 4140-partition case stays
        // MajorityVote-only to bound the feature's runtime.
        let world = &expensive_worlds()[0];
        check_small_world_exact(&Accu::default(), world);
    }
}
