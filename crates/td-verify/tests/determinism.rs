//! Thread-count and cache determinism: the same configuration must
//! produce the same bits at `Threads(1)`, `Threads(2)`, `Threads(8)`,
//! and `Auto`, and the shared distance-matrix k-sweep must match direct
//! per-k recomputation exactly.

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, MajorityVote};
use td_verify::oracle::{
    check_accugen_thread_invariance, check_cached_sweep, check_thread_invariance,
};
use td_verify::worlds::separable_world;

/// `0` means [`tdac_core::Parallelism::Auto`].
const THREADS: &[usize] = &[2, 8, 0];

#[test]
fn tdac_is_bit_identical_across_thread_counts_on_ds1() {
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(60));
    check_thread_invariance(&MajorityVote, &ds1.dataset, THREADS);
    check_thread_invariance(&Accu::default(), &ds1.dataset, THREADS);
}

#[test]
fn tdac_is_bit_identical_across_thread_counts_on_noisy_data() {
    // DS3 relaxes the working assumptions (noisy reliabilities), so the
    // sweep's silhouettes are less clear-cut — a better stress of the
    // index-deterministic reductions than a clean separable world.
    let ds3 = generate_synthetic(&SyntheticConfig::ds3().scaled(40));
    check_thread_invariance(&MajorityVote, &ds3.dataset, THREADS);
    let world = separable_world(&[3, 3], 6);
    check_thread_invariance(&Accu::default(), &world.dataset, THREADS);
}

#[test]
fn accugen_scan_is_bit_identical_across_thread_counts() {
    // The streamed Bell-number scan reduces worker-local winners with a
    // (score, index) total order; any thread count must pick the same
    // partition with the same score bits.
    let world = separable_world(&[2, 2], 5);
    check_accugen_thread_invariance(&MajorityVote, &world.dataset, &world.truth, THREADS);
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(15));
    check_accugen_thread_invariance(&MajorityVote, &ds1.dataset, &ds1.truth, &[2, 8]);
}

#[test]
fn cached_k_sweep_matches_direct_silhouette_recomputation() {
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(50));
    check_cached_sweep(&MajorityVote, &ds1.dataset);
    check_cached_sweep(&Accu::default(), &ds1.dataset);
    check_cached_sweep(&MajorityVote, &separable_world(&[2, 2, 2], 6).dataset);
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same seed, same machine, same bits — twice in a row.
    use td_verify::OutcomeFingerprint;
    use tdac_core::{Tdac, TdacConfig};
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(30));
    let run = || {
        OutcomeFingerprint::of(
            &Tdac::new(TdacConfig::default())
                .run(&Accu::default(), &ds1.dataset)
                .expect("non-empty"),
        )
    };
    assert_eq!(run(), run());
}
