//! The shard oracle (tentpole of the sharded-execution PR; see
//! `docs/SHARDING.md`).
//!
//! Headline invariant: a sharded run is **bit-identical** to the
//! single-process `Tdac::run` — same predictions, same confidences,
//! same trust vector, same partition — across shard counts {1,2,4,8},
//! both [`ShardStrategy`]s, and both distance kernels. Worker
//! processes are real: the tests spawn this very test binary
//! (`td-verify worker`) via `CARGO_BIN_EXE_td-verify`, so the whole
//! job-line → slice-load → partial-stream → merge path runs for real.
//!
//! Failure semantics ride along: a chaos-killed worker must surface as
//! a typed `ShardFailed` naming the shard, and a worker that reports a
//! budget degradation must flag the whole outcome — never thin the
//! merge.

use proptest::prelude::*;
use td_algorithms::{MajorityVote, TruthDiscovery, TruthResult};
use td_shard::{ShardError, ShardRunner, WorkerCommand, CHAOS_EXIT_ENV};
use td_verify::worlds::separable_world;
use td_verify::OutcomeFingerprint;
use tdac_core::{
    ExecutionBackend, KernelPolicy, ShardPlan, ShardStrategy, Tdac, TdacConfig,
};

/// The real worker: this test binary re-invoked with `worker`.
fn worker_cmd() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_td-verify"), vec!["worker".to_string()])
}

/// DS1 scaled down: still partitions into several attribute groups
/// (asserted below), small enough for 16 coordinator runs.
fn oracle_dataset() -> td_model::Dataset {
    datagen::generate_synthetic(&datagen::SyntheticConfig::ds1().scaled(200)).dataset
}

fn config(kernel: KernelPolicy, backend: ExecutionBackend) -> TdacConfig {
    TdacConfig {
        kernel,
        backend,
        ..TdacConfig::default()
    }
}

#[test]
fn sharded_outcome_is_bit_identical_across_counts_strategies_and_kernels() {
    let dataset = oracle_dataset();
    for kernel in [KernelPolicy::Dense, KernelPolicy::Packed] {
        let expected = Tdac::new(config(kernel, ExecutionBackend::default()))
            .run(&MajorityVote, &dataset)
            .expect("in-process reference run");
        assert!(
            !expected.fallback && expected.partition.groups().len() >= 2,
            "oracle dataset must actually partition, or the workers have nothing to do"
        );
        let reference = OutcomeFingerprint::of(&expected);
        for strategy in [ShardStrategy::ByAttributeGroup, ShardStrategy::HashByObject] {
            for shards in [1usize, 2, 4, 8] {
                let backend = ExecutionBackend::Sharded(ShardPlan::new(strategy, shards));
                let outcome = ShardRunner::new(config(kernel, backend))
                    .expect("sharded config is valid")
                    .with_worker(worker_cmd())
                    .run("MajorityVote", &dataset)
                    .unwrap_or_else(|e| {
                        panic!("sharded run ({strategy:?}, {shards} shards) failed: {e}")
                    });
                let got = OutcomeFingerprint::of(&outcome);
                if let Some(diff) = reference.diff(&got) {
                    panic!(
                        "sharded outcome diverged ({strategy:?}, {shards} shards, \
                         {kernel:?} kernel):\n{diff}"
                    );
                }
            }
        }
    }
}

#[test]
fn shard_counters_account_for_spawned_workers_and_partials() {
    let dataset = oracle_dataset();
    let obs = tdac_core::Observer::enabled();
    let cfg = TdacConfig {
        observer: obs.clone(),
        ..config(
            KernelPolicy::Auto,
            ExecutionBackend::Sharded(ShardPlan::new(ShardStrategy::ByAttributeGroup, 2)),
        )
    };
    let outcome = ShardRunner::new(cfg)
        .expect("valid config")
        .with_worker(worker_cmd())
        .run("MajorityVote", &dataset)
        .expect("sharded run");
    let groups = outcome.partition.groups().len() as u64;
    let profile = obs.profile().expect("enabled observer yields a profile");
    assert_eq!(profile.counter("shards_spawned"), Some(2));
    assert_eq!(profile.counter("shard_partials"), Some(groups));
    assert_eq!(profile.counter("shard_failures").unwrap_or(0), 0);
}

#[test]
fn chaos_killed_worker_is_a_typed_shard_failure_naming_the_shard() {
    let dataset = oracle_dataset();
    let backend = ExecutionBackend::Sharded(ShardPlan::new(ShardStrategy::ByAttributeGroup, 2));
    // Victim: shard 1 (owns the odd-indexed groups). The env rides on
    // the worker command — every worker sees it, only shard 1 matches
    // its own index and dies after its first partial, without `Done`.
    let err = ShardRunner::new(config(KernelPolicy::Auto, backend))
        .expect("valid config")
        .with_worker(worker_cmd().env(CHAOS_EXIT_ENV, "1"))
        .run("MajorityVote", &dataset)
        .expect_err("a killed worker must fail the run, not thin the merge");
    match err {
        ShardError::ShardFailed { shard, detail } => {
            assert_eq!(shard, 1, "the error names the dead shard");
            assert!(
                detail.contains("exited before"),
                "detail describes the death: {detail}"
            );
        }
        other => panic!("expected ShardFailed for shard 1, got: {other}"),
    }
}

#[test]
fn worker_reported_degradation_flags_the_whole_outcome() {
    // A scripted "worker" that drains its job and answers with a
    // Degraded message: the coordinator must return the flagged
    // reference outcome (fallback, degradation attached) — a partial
    // merge is never an option.
    let degradation = tdac_core::Degradation {
        reason: tdac_core::DegradationReason::Deadline(1),
        phase: "shard_group_run".to_string(),
        work: tdac_core::WorkCompleted::default(),
    };
    let script_msgs = format!(
        "{}\n{}\n",
        serde_json::to_string(&td_shard::ShardMsg::Degraded(degradation)).unwrap(),
        serde_json::to_string(&td_shard::ShardMsg::Done).unwrap(),
    );
    let script_path = std::env::temp_dir().join(format!(
        "td-shard-degrade-script-{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&script_path, script_msgs).unwrap();

    let dataset = oracle_dataset();
    let backend = ExecutionBackend::Sharded(ShardPlan::new(ShardStrategy::ByAttributeGroup, 2));
    let worker = WorkerCommand::new(
        "/bin/sh",
        vec![
            "-c".to_string(),
            // Drain stdin first so the coordinator's job write cannot
            // hit a closed pipe, then replay the canned messages.
            format!("cat >/dev/null; cat {}", script_path.display()),
        ],
    );
    let outcome = ShardRunner::new(config(KernelPolicy::Auto, backend))
        .expect("valid config")
        .with_worker(worker)
        .run("MajorityVote", &dataset)
        .expect("a degraded shard yields a flagged outcome, not an error");
    std::fs::remove_file(&script_path).ok();
    assert!(outcome.fallback, "degraded runs fall back to the reference");
    assert!(
        outcome.degradation.is_some(),
        "the worker's degradation is attached, not dropped"
    );
    // The flagged result is the reference run over the whole view —
    // exactly what the in-process path returns when its per-group
    // phase is refused.
    let reference = MajorityVote.discover(&dataset.view_all());
    td_verify::assert_bit_identical(&outcome.result, &reference, "degraded shard fallback");
}

#[test]
fn strategy_probe_rejects_hook_less_algorithms_before_spawning() {
    // TruthFinder's trust depends on its iteration history, so it has
    // no trust_from_predictions hook: object-hash sharding must refuse
    // it up front with a typed error (attribute-group sharding is fine).
    let dataset = oracle_dataset();
    let backend = ExecutionBackend::Sharded(ShardPlan::new(ShardStrategy::HashByObject, 2));
    let err = ShardRunner::new(config(KernelPolicy::Auto, backend))
        .expect("valid config")
        .with_worker(worker_cmd())
        .run("TruthFinder", &dataset)
        .expect_err("no hook, no object sharding");
    match err {
        ShardError::StrategyUnsupported {
            algorithm,
            strategy,
        } => {
            assert_eq!(algorithm, "TruthFinder");
            assert_eq!(strategy, ShardStrategy::HashByObject);
        }
        other => panic!("expected StrategyUnsupported, got: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The object-sharding merge math, divorced from processes: for ANY
    /// assignment of objects to buckets, running the base algorithm per
    /// bucket-restricted claim subset, unioning the predictions, and
    /// re-deriving trust through `trust_from_predictions` reproduces
    /// the whole-view run to the bit. (`HashByObject` is one particular
    /// assignment — the FNV-1a one — so the oracle above is the
    /// end-to-end instance of this property.)
    #[test]
    fn any_object_partition_unions_to_the_canonical_result(
        buckets in proptest::collection::vec(0usize..4, 8),
    ) {
        let world = separable_world(&[2, 2], 8);
        let dataset = &world.dataset;
        let view = dataset.view_all();
        let expected = MajorityVote.discover(&view);

        let mut unioned = TruthResult::default();
        for b in 0..4usize {
            let slice = dataset
                .subset_where(|c| buckets[c.object.index()] == b)
                .expect("bucket subset is a valid dataset");
            let partial = MajorityVote.discover(&slice.view_all());
            for (o, a, v, c) in partial.iter() {
                unioned.set_prediction(o, a, v, c);
            }
            unioned.iterations = unioned.iterations.max(partial.iterations);
        }
        unioned.source_trust = MajorityVote
            .trust_from_predictions(&view, &unioned)
            .expect("MajorityVote implements the hook");

        td_verify::assert_bit_identical(&unioned, &expected, "object-partition union");
        prop_assert_eq!(unioned.iterations, expected.iterations);
    }
}
