//! Observer neutrality: attaching an enabled `td_obs::Observer` to the
//! TD-AC config collects spans and counters but may never change a
//! single output bit — at any thread count, on any dataset, including
//! the committed DS1 golden tables.

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, MajorityVote};
use td_verify::golden::{compute_ds1, compute_ds1_with, diff_ds1};
use td_verify::oracle::check_observer_neutrality;
use td_verify::worlds::separable_world;
use tdac_core::{Observer, TdacConfig};

/// `0` means [`tdac_core::Parallelism::Auto`].
const THREADS: &[usize] = &[2, 8, 0];

#[test]
fn observation_is_bit_neutral_on_ds1() {
    let ds1 = generate_synthetic(&SyntheticConfig::ds1().scaled(60));
    check_observer_neutrality(&MajorityVote, &ds1.dataset, THREADS);
    check_observer_neutrality(&Accu::default(), &ds1.dataset, THREADS);
}

#[test]
fn observation_is_bit_neutral_on_noisy_data() {
    // DS3's muddier silhouettes stress the sweep's tie-breaking more
    // than a clean separable world does.
    let ds3 = generate_synthetic(&SyntheticConfig::ds3().scaled(40));
    check_observer_neutrality(&MajorityVote, &ds3.dataset, THREADS);
    let world = separable_world(&[3, 3], 6);
    check_observer_neutrality(&Accu::default(), &world.dataset, THREADS);
}

#[test]
fn ds1_golden_tables_are_identical_with_observation_enabled() {
    let plain = compute_ds1();
    let observed = compute_ds1_with(&TdacConfig {
        observer: Observer::enabled(),
        ..TdacConfig::default()
    });
    if let Some(diff) = diff_ds1(&plain, &observed) {
        panic!("enabling observation moved a DS1 golden field: {diff}");
    }
}
