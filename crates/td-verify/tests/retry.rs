//! The retry-supervisor oracle (tentpole of the fault-tolerant
//! sharding PR; see `docs/SHARDING.md` § failure semantics).
//!
//! Headline invariants, enforced against real worker processes (this
//! test binary re-invoked as `td-verify worker`):
//!
//! * **retry is invisible in the bits** — a worker chaos-killed on its
//!   first attempt that succeeds on re-spawn yields an outcome
//!   bit-identical to the clean sharded run (itself bit-identical to
//!   the in-process run), across both [`ShardStrategy`]s and both
//!   distance kernels, with no degradation flag;
//! * **exhausted retries degrade, never thin** — when every attempt
//!   dies, the shard's jobs run in-process and the outcome is flagged
//!   with [`DegradationReason::ShardFallback`] naming the shard and the
//!   attempt count, while the merged bits still match the clean run
//!   exactly (the flag records the execution path, not a different
//!   answer);
//! * **hangs are faults too** — a worker that stalls past the
//!   coordinator's patience (deadline + grace) is killed and retried
//!   like any crash;
//! * **accounting holds** — `shard_retries` / `shard_respawns` /
//!   `shard_fallbacks` are non-vacuous under chaos and zero on clean
//!   runs.
//!
//! A proptest closes the gaps: for ANY per-attempt chaos schedule over
//! {fail, hang, succeed}, the run either produces the canonical bits
//! unflagged, or the canonical bits flagged as a shard fallback —
//! never an error, never an unflagged divergent result.

use std::collections::HashSet;
use std::sync::OnceLock;

use proptest::prelude::*;
use td_shard::{ShardRunner, WorkerCommand, CHAOS_EXIT_ENV, CHAOS_PLAN_ENV};
use td_verify::OutcomeFingerprint;
use tdac_core::{
    DegradationReason, ExecutionBackend, KernelPolicy, Observer, RetryPolicy, ShardPlan,
    ShardStrategy, Tdac, TdacConfig, TdacOutcome,
};

/// The real worker: this test binary re-invoked with `worker`.
fn worker_cmd() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_td-verify"), vec!["worker".to_string()])
}

/// Same oracle dataset as the shard suite: DS1 scaled down, still
/// partitioning into several attribute groups.
fn oracle_dataset() -> &'static td_model::Dataset {
    static DATASET: OnceLock<td_model::Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        datagen::generate_synthetic(&datagen::SyntheticConfig::ds1().scaled(200)).dataset
    })
}

/// The clean in-process reference for a kernel, computed once.
fn reference(kernel: KernelPolicy) -> OutcomeFingerprint {
    static DENSE: OnceLock<OutcomeFingerprint> = OnceLock::new();
    static PACKED: OnceLock<OutcomeFingerprint> = OnceLock::new();
    let cell = match kernel {
        KernelPolicy::Packed => &PACKED,
        _ => &DENSE,
    };
    cell.get_or_init(|| {
        let outcome = Tdac::new(TdacConfig {
            kernel,
            ..TdacConfig::default()
        })
        .run(&td_algorithms::MajorityVote, oracle_dataset())
        .expect("in-process reference run");
        assert!(
            !outcome.fallback && outcome.partition.groups().len() >= 2,
            "oracle dataset must actually partition"
        );
        OutcomeFingerprint::of(&outcome)
    })
    .clone()
}

fn config(kernel: KernelPolicy, plan: ShardPlan) -> TdacConfig {
    TdacConfig {
        kernel,
        backend: ExecutionBackend::Sharded(plan),
        ..TdacConfig::default()
    }
}

/// A 2-shard plan with `attempts` total tries per shard and zero
/// backoff (determinism does not need real waiting; the backoff math
/// has its own unit oracle in `tdac_core::backend`).
fn retry_plan(strategy: ShardStrategy, attempts: u32) -> ShardPlan {
    let mut plan = ShardPlan::new(strategy, 2);
    plan.retry = RetryPolicy {
        max_attempts: attempts,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
    };
    plan
}

fn run_with(
    kernel: KernelPolicy,
    plan: ShardPlan,
    worker: WorkerCommand,
    obs: Option<Observer>,
) -> Result<TdacOutcome, td_shard::ShardError> {
    let mut cfg = config(kernel, plan);
    if let Some(obs) = obs {
        cfg.observer = obs;
    }
    ShardRunner::new(cfg)
        .expect("valid sharded config")
        .with_worker(worker)
        .run("MajorityVote", oracle_dataset())
}

#[test]
fn killed_worker_retries_to_a_bit_identical_unflagged_outcome() {
    // "1:F": shard 1's first attempt dies after its first partial; the
    // re-spawned attempt 2 runs past the end of the schedule and
    // succeeds. Both strategies, both kernels.
    for kernel in [KernelPolicy::Dense, KernelPolicy::Packed] {
        let want = reference(kernel);
        for strategy in [ShardStrategy::ByAttributeGroup, ShardStrategy::HashByObject] {
            let outcome = run_with(
                kernel,
                retry_plan(strategy, 2),
                worker_cmd().env(CHAOS_PLAN_ENV, "1:F"),
                None,
            )
            .unwrap_or_else(|e| panic!("retried run ({strategy:?}, {kernel:?}) failed: {e}"));
            assert!(
                outcome.degradation.is_none() && !outcome.fallback,
                "a successful retry leaves no flag ({strategy:?}, {kernel:?})"
            );
            if let Some(diff) = want.diff(&OutcomeFingerprint::of(&outcome)) {
                panic!("retried outcome diverged ({strategy:?}, {kernel:?}):\n{diff}");
            }
        }
    }
}

#[test]
fn exhausted_retries_fall_back_in_process_flagged_and_bit_identical() {
    // CHAOS_EXIT kills shard 1 on *every* attempt, so both attempts
    // burn and the coordinator must run shard 1's jobs in-process —
    // flagged with the shard and the attempt count, bits unchanged.
    // The fallback pins chaos off internally, which this test also
    // proves: the worker env rides on the WorkerCommand, and the
    // fallback runs the very same job the chaos env would have killed.
    for strategy in [ShardStrategy::ByAttributeGroup, ShardStrategy::HashByObject] {
        let outcome = run_with(
            KernelPolicy::Auto,
            retry_plan(strategy, 2),
            worker_cmd().env(CHAOS_EXIT_ENV, "1"),
            None,
        )
        .unwrap_or_else(|e| panic!("fallback run ({strategy:?}) errored: {e}"));
        assert!(
            !outcome.fallback,
            "the merge is complete — fallback of one shard is not the reference fallback"
        );
        let deg = outcome
            .degradation
            .as_ref()
            .expect("an in-process fallback must flag the outcome");
        assert_eq!(deg.phase, "shard/fallback");
        match &deg.reason {
            DegradationReason::ShardFallback(fault) => {
                assert_eq!(fault.shard, 1, "the flag names the shard that fell back");
                assert_eq!(fault.attempts, 2, "and how many attempts it burned");
                assert!(
                    fault.detail.contains("exited before"),
                    "detail records the last fault: {}",
                    fault.detail
                );
            }
            other => panic!("expected ShardFallback, got {other:?}"),
        }
        if let Some(diff) = reference(KernelPolicy::Auto).diff(&OutcomeFingerprint::of(&outcome)) {
            panic!("fallback outcome diverged ({strategy:?}):\n{diff}");
        }
    }
}

#[test]
fn hanging_worker_trips_patience_and_retries_clean() {
    // "1:H": shard 1's first attempt hangs after its first partial. The
    // plan's explicit grace keeps the stall detection fast: patience is
    // deadline + grace = ~600 ms, after which the supervisor kills the
    // hung worker and the re-spawn succeeds.
    let mut plan = retry_plan(ShardStrategy::ByAttributeGroup, 2);
    plan.worker_deadline_ms = Some(200);
    plan.worker_grace_ms = Some(400);
    let outcome = run_with(
        KernelPolicy::Auto,
        plan,
        worker_cmd().env(CHAOS_PLAN_ENV, "1:H"),
        None,
    )
    .expect("a hung worker is retried, not fatal");
    assert!(outcome.degradation.is_none(), "the retry succeeded");
    if let Some(diff) = reference(KernelPolicy::Auto).diff(&OutcomeFingerprint::of(&outcome)) {
        panic!("post-hang retried outcome diverged:\n{diff}");
    }
}

#[test]
fn retry_counters_are_nonvacuous_under_chaos_and_zero_when_clean() {
    // Clean run, retries armed: the supervisor machinery is live but
    // must count nothing.
    let obs = Observer::enabled();
    run_with(
        KernelPolicy::Auto,
        retry_plan(ShardStrategy::ByAttributeGroup, 3),
        worker_cmd(),
        Some(obs.clone()),
    )
    .expect("clean run");
    let profile = obs.profile().expect("enabled observer yields a profile");
    for counter in ["shard_failures", "shard_retries", "shard_respawns", "shard_fallbacks"] {
        assert_eq!(
            profile.counter(counter).unwrap_or(0),
            0,
            "{counter} must stay zero on a clean run"
        );
    }

    // One crash, one successful re-spawn.
    let obs = Observer::enabled();
    run_with(
        KernelPolicy::Auto,
        retry_plan(ShardStrategy::ByAttributeGroup, 2),
        worker_cmd().env(CHAOS_PLAN_ENV, "1:F"),
        Some(obs.clone()),
    )
    .expect("retried run");
    let profile = obs.profile().expect("profile");
    assert_eq!(profile.counter("shard_failures"), Some(1));
    assert_eq!(profile.counter("shard_retries"), Some(1));
    assert_eq!(profile.counter("shard_respawns"), Some(1));
    assert_eq!(profile.counter("shard_fallbacks").unwrap_or(0), 0);

    // Every attempt crashes: both failures counted, one retry burned,
    // one fallback taken.
    let obs = Observer::enabled();
    run_with(
        KernelPolicy::Auto,
        retry_plan(ShardStrategy::ByAttributeGroup, 2),
        worker_cmd().env(CHAOS_EXIT_ENV, "1"),
        Some(obs.clone()),
    )
    .expect("fallback run");
    let profile = obs.profile().expect("profile");
    assert_eq!(profile.counter("shard_failures"), Some(2));
    assert_eq!(profile.counter("shard_retries"), Some(1));
    assert_eq!(profile.counter("shard_respawns"), Some(1));
    assert_eq!(profile.counter("shard_fallbacks"), Some(1));
}

/// Temp slice files carry a `td-shard-<pid>-` prefix; the coordinator
/// runs inside this test process, so its slices are ours to audit.
fn live_slices() -> HashSet<std::path::PathBuf> {
    let prefix = format!("td-shard-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(&prefix))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn slice_files_are_cleaned_up_even_through_retries_and_fallback() {
    let before = live_slices();
    run_with(
        KernelPolicy::Auto,
        retry_plan(ShardStrategy::ByAttributeGroup, 2),
        worker_cmd().env(CHAOS_EXIT_ENV, "1"),
        None,
    )
    .expect("fallback run");
    // Other tests in this binary may have slices in flight (same pid,
    // parallel test threads), so only our run's leftovers — paths that
    // appeared since the snapshot — count, and transient ones get a
    // few chances to drain.
    for wait in 0..4 {
        let leaked: Vec<_> = live_slices().difference(&before).cloned().collect();
        if leaked.is_empty() {
            return;
        }
        if wait == 3 {
            panic!("slice files leaked past the RAII guard: {leaked:?}");
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For ANY chaos schedule of up to three per-attempt actions over
    /// {fail, hang, succeed} against one shard, a retry-armed run with
    /// three attempts either returns the canonical bits unflagged (some
    /// attempt succeeded) or the canonical bits flagged as a shard
    /// fallback (every attempt faulted) — never an error and never an
    /// unflagged divergent merge.
    #[test]
    fn any_chaos_schedule_yields_canonical_bits_or_a_flagged_fallback(
        schedule in proptest::collection::vec(0u32..3, 1..=3),
    ) {
        let letters: String = schedule
            .iter()
            .map(|a| match a {
                0 => 'F',
                1 => 'H',
                _ => 'S',
            })
            .collect();
        let mut plan = retry_plan(ShardStrategy::ByAttributeGroup, 3);
        // Short deadline + explicit grace keeps hang detection quick;
        // healthy group runs on the scaled dataset finish in well under
        // the deadline, so only the chaos hang ever trips it.
        plan.worker_deadline_ms = Some(200);
        plan.worker_grace_ms = Some(400);
        let run = run_with(
            KernelPolicy::Auto,
            plan,
            worker_cmd().env(CHAOS_PLAN_ENV, format!("1:{letters}")),
            None,
        );
        prop_assert!(run.is_ok(), "schedule {letters:?} errored: {:?}", run.err());
        let outcome = run.unwrap();

        let all_faulty = schedule.len() >= 3 && schedule.iter().all(|&a| a != 2);
        match &outcome.degradation {
            None => prop_assert!(!all_faulty, "schedule {letters:?} must exhaust attempts"),
            Some(deg) => {
                prop_assert!(all_faulty, "schedule {letters:?} has a succeeding attempt");
                prop_assert!(
                    matches!(deg.reason, DegradationReason::ShardFallback(_)),
                    "wrong flag for {letters:?}: {:?}",
                    deg.reason
                );
            }
        }
        let diff = reference(KernelPolicy::Auto).diff(&OutcomeFingerprint::of(&outcome));
        prop_assert!(
            diff.is_none(),
            "schedule {letters:?} diverged from the canonical bits:\n{}",
            diff.unwrap_or_default()
        );
    }
}
