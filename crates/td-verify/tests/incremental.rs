//! Differential oracle for the incremental engine.
//!
//! The headline contract of `tdac_core::TdacSession` is *bit identity*:
//! under [`RepartitionPolicy::Always`], ingesting claim batches must
//! produce exactly the bits a from-scratch [`Tdac::run`] produces on the
//! accumulated claim set — at every thread count, under every kernel
//! policy, after every batch. Under a pinned policy the reduced oracle
//! is [`run_partition`] over the session's pinned grouping. On top of
//! the fixed-split oracles, a metamorphic proptest checks **batch-split
//! invariance**: however the same claim pool is carved into batches,
//! the final answer is the same.

use proptest::prelude::*;
use std::collections::HashSet;
use td_algorithms::{Accu, MajorityVote, TruthDiscovery};
use td_model::{ClaimBatch, Dataset, DatasetBuilder, Value};
use td_verify::worlds::separable_world;
use td_verify::{OutcomeFingerprint, ResultFingerprint};
use tdac_core::{
    run_partition, ExecutionBackend, KernelPolicy, Observer, Parallelism, RepartitionPolicy,
    Tdac, TdacConfig,
    TdacSession,
};

/// A named claim row, re-appendable through a [`ClaimBatch`].
type Row = (String, String, String, Value);

/// Splits a dataset into a base that names every entity (so batch order
/// cannot change id interning) and a pool of deferred claims — every
/// `keep_every`-th eligible claim goes to the pool.
fn split_claims(dataset: &Dataset, keep_every: usize) -> (Dataset, Vec<Row>) {
    let mut base = DatasetBuilder::new();
    let mut pool = Vec::new();
    let mut seen: HashSet<(u8, usize)> = HashSet::new();
    for (i, c) in dataset.claims().iter().enumerate() {
        let row: Row = (
            dataset.source_name(c.source).to_string(),
            dataset.object_name(c.object).to_string(),
            dataset.attribute_name(c.attribute).to_string(),
            dataset.value(c.value).clone(),
        );
        let fresh = !seen.contains(&(0, c.source.index()))
            || !seen.contains(&(1, c.object.index()))
            || !seen.contains(&(2, c.attribute.index()));
        seen.insert((0, c.source.index()));
        seen.insert((1, c.object.index()));
        seen.insert((2, c.attribute.index()));
        if fresh || i % keep_every != 0 {
            base.claim(&row.0, &row.1, &row.2, row.3).unwrap();
        } else {
            pool.push(row);
        }
    }
    (base.build(), pool)
}

fn batch_of(rows: &[Row]) -> ClaimBatch {
    let mut b = ClaimBatch::new();
    for (s, o, a, v) in rows {
        b.claim(s, o, a, v.clone());
    }
    b
}

/// The thread × kernel matrix the parallel-execution contract covers
/// (`0` means [`Parallelism::Auto`]).
const THREADS: &[usize] = &[1, 2, 8, 0];
const KERNELS: &[KernelPolicy] = &[KernelPolicy::Dense, KernelPolicy::Packed];

fn config(threads: usize, kernel: KernelPolicy) -> TdacConfig {
    let parallelism = if threads == 0 {
        Parallelism::Auto
    } else {
        Parallelism::Threads(threads)
    };
    TdacConfig {
        backend: ExecutionBackend::in_process(parallelism),
        kernel,
        ..Default::default()
    }
}

/// Ingests the pool in `n_batches` round-robin batches under `Always`
/// and asserts, after **every** batch, that the session's outcome is
/// bit-identical to a from-scratch run on the accumulated claims.
fn check_always_oracle<B>(make: impl Fn() -> B, dataset: &Dataset, n_batches: usize)
where
    B: TruthDiscovery + Sync,
{
    let (base, pool) = split_claims(dataset, 3);
    assert!(!pool.is_empty(), "split produced no deferred claims");
    for &threads in THREADS {
        for &kernel in KERNELS {
            let cfg = config(threads, kernel);
            let mut session = TdacSession::start(
                make(),
                cfg.clone(),
                RepartitionPolicy::Always,
                base.clone(),
            )
            .unwrap();
            for bi in 0..n_batches {
                let rows: Vec<Row> = pool
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % n_batches == bi)
                    .map(|(_, r)| r.clone())
                    .collect();
                session.ingest(&batch_of(&rows)).unwrap();
                let oracle = Tdac::new(cfg.clone())
                    .run(&make(), session.dataset())
                    .unwrap();
                assert_eq!(
                    OutcomeFingerprint::of(session.outcome()),
                    OutcomeFingerprint::of(&oracle),
                    "incremental != batch after batch {bi} (threads={threads}, {kernel:?})"
                );
            }
        }
    }
}

#[test]
fn always_policy_is_bit_identical_to_batch_recompute() {
    let world = separable_world(&[3, 3], 6);
    check_always_oracle(|| MajorityVote, &world.dataset, 3);
}

#[test]
fn always_policy_oracle_holds_for_iterative_base_algorithms() {
    let world = separable_world(&[2, 2, 2], 5);
    check_always_oracle(Accu::default, &world.dataset, 2);
}

#[test]
fn always_policy_oracle_survives_new_entities() {
    // Batches that grow the entity dimensions exercise the column
    // append (new objects) and the honest full rebuild (new sources).
    let world = separable_world(&[3, 3], 6);
    let cfg = TdacConfig::default();
    let (base, pool) = split_claims(&world.dataset, 4);
    let mut session = TdacSession::start(
        MajorityVote,
        cfg.clone(),
        RepartitionPolicy::Always,
        base,
    )
    .unwrap();

    let mut growing = batch_of(&pool);
    growing
        .claim("s0_0", "o-new", "g0a0", Value::int(77))
        .claim("s0_1", "o-new", "g0a0", Value::int(77))
        .claim("s-new", "o0", "g0a1", Value::int(0));
    let report = session.ingest(&growing).unwrap();
    assert!(report.rebuilt, "a new source must force the rebuild path");
    let oracle = Tdac::new(cfg.clone())
        .run(&MajorityVote, session.dataset())
        .unwrap();
    assert_eq!(
        OutcomeFingerprint::of(session.outcome()),
        OutcomeFingerprint::of(&oracle)
    );

    // And a follow-up object-growing batch takes the append path.
    let mut follow = ClaimBatch::new();
    follow
        .claim("s1_0", "o-newer", "g1a0", Value::int(88))
        .claim("s1_1", "o-newer", "g1a0", Value::int(88));
    let report = session.ingest(&follow).unwrap();
    assert!(!report.rebuilt, "a new object appends pair columns in place");
    let oracle = Tdac::new(cfg).run(&MajorityVote, session.dataset()).unwrap();
    assert_eq!(
        OutcomeFingerprint::of(session.outcome()),
        OutcomeFingerprint::of(&oracle)
    );
}

#[test]
fn pinned_policy_matches_run_partition_oracle() {
    // Under `Never` the reduced oracle is a per-group replay of the
    // pinned partition over the accumulated claims (`run_partition`,
    // which reports the raw merge — the session normalizes iterations
    // to one logical TD-AC pass, so the oracle is normalized the same
    // way before fingerprinting).
    let world = separable_world(&[3, 3], 6);
    let (base, pool) = split_claims(&world.dataset, 3);
    for &threads in THREADS {
        for &kernel in KERNELS {
            let cfg = config(threads, kernel);
            let mut session = TdacSession::start(
                MajorityVote,
                cfg.clone(),
                RepartitionPolicy::Never,
                base.clone(),
            )
            .unwrap();
            for bi in 0..3 {
                let rows: Vec<Row> = pool
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == bi)
                    .map(|(_, r)| r.clone())
                    .collect();
                let report = session.ingest(&batch_of(&rows)).unwrap();
                assert!(!report.repartitioned, "Never must keep the pin");
                let mut oracle = run_partition(
                    &MajorityVote,
                    session.dataset(),
                    session.partition(),
                    &Observer::disabled(),
                );
                oracle.iterations = 1;
                assert_eq!(
                    ResultFingerprint::of(&session.outcome().result),
                    ResultFingerprint::of(&oracle),
                    "pinned ingest != per-group replay after batch {bi} \
                     (threads={threads}, {kernel:?})"
                );
            }
        }
    }
}

#[test]
fn pinned_ingest_reuses_at_least_one_group() {
    // The perf story depends on reuse actually happening: a pool claim
    // touches a few attributes, so at least one planted group must stay
    // clean and be served from the cache.
    let world = separable_world(&[3, 3], 6);
    let (base, pool) = split_claims(&world.dataset, 6);
    let mut session = TdacSession::start(
        MajorityVote,
        TdacConfig::default(),
        RepartitionPolicy::Never,
        base,
    )
    .unwrap();
    let report = session.ingest(&batch_of(&pool[..1])).unwrap();
    assert!(report.groups_reused >= 1, "{report:?}");
    assert_eq!(report.groups_total, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Metamorphic batch-split invariance: however the deferred claim
    /// pool is carved into (up to three, possibly empty) batches, the
    /// session's final outcome is bit-identical to the from-scratch run
    /// on the accumulated claims, and the *resolved* predictions match
    /// the canonical one-shot dataset exactly. The separable world is
    /// tie-free, so resolved truth cannot legitimately vary.
    #[test]
    fn batch_split_invariance(assign in proptest::collection::vec(0..3usize, 64..=64)) {
        let world = separable_world(&[2, 2], 4);
        let (base, pool) = split_claims(&world.dataset, 3);
        let cfg = TdacConfig::default();
        let mut session = TdacSession::start(
            MajorityVote,
            cfg.clone(),
            RepartitionPolicy::Always,
            base,
        ).unwrap();
        for bi in 0..3 {
            let rows: Vec<Row> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| assign[i % assign.len()] == bi)
                .map(|(_, r)| r.clone())
                .collect();
            session.ingest(&batch_of(&rows)).unwrap();
        }
        prop_assert_eq!(session.claims_appended(), pool.len());

        // Bit identity against the accumulated dataset…
        let oracle = Tdac::new(cfg.clone()).run(&MajorityVote, session.dataset()).unwrap();
        prop_assert_eq!(
            OutcomeFingerprint::of(session.outcome()),
            OutcomeFingerprint::of(&oracle)
        );

        // …and semantic identity against the canonical one-shot world
        // (ids can differ across splits; resolved names cannot).
        let canonical = Tdac::new(cfg).run(&MajorityVote, &world.dataset).unwrap();
        let resolve = |d: &Dataset, r: &td_algorithms::TruthResult| {
            let view = d.view_all();
            let mut rows: Vec<(String, String, Option<Value>)> = view
                .cells()
                .map(|c| {
                    (
                        d.object_name(c.object).to_string(),
                        d.attribute_name(c.attribute).to_string(),
                        r.prediction(c.object, c.attribute).map(|v| d.value(v).clone()),
                    )
                })
                .collect();
            rows.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
            rows
        };
        prop_assert_eq!(
            resolve(session.dataset(), &session.outcome().result),
            resolve(&world.dataset, &canonical.result)
        );
    }
}
