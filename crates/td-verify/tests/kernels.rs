//! Kernel-parity suite: the bit-packed popcount Hamming kernel against
//! the dense `f64` reference path — raw distance matrices, end-to-end
//! TD-AC fingerprints, and the committed DS1 golden, all bit-exact.
//!
//! `scripts/verify.sh` runs this file as the kernel-parity gate.

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, MajorityVote, TruthFinder};
use td_verify::kernels::{
    check_ds1_kernel_parity, check_kernel_outcome_invariance, check_kernel_parity,
};
use td_verify::worlds::standard_worlds;

#[test]
fn packed_and_dense_matrices_agree_on_synthetic_presets() {
    for config in [
        SyntheticConfig::ds1().scaled(40),
        SyntheticConfig::ds2().scaled(40),
        SyntheticConfig::ds3().scaled(40),
    ] {
        let world = generate_synthetic(&config);
        check_kernel_parity(&MajorityVote, &world.dataset);
    }
}

#[test]
fn packed_and_dense_matrices_agree_on_micro_worlds() {
    for world in standard_worlds() {
        check_kernel_parity(&MajorityVote, &world.dataset);
    }
}

#[test]
fn packed_and_dense_matrices_agree_with_an_iterative_base() {
    // An iterative base produces a different reference truth (and hence
    // different truth vectors) than voting — the parity must hold for
    // whatever 0/1 matrix falls out.
    let world = generate_synthetic(&SyntheticConfig::ds1().scaled(40));
    check_kernel_parity(&Accu::default(), &world.dataset);
    check_kernel_parity(&TruthFinder::default(), &world.dataset);
}

#[test]
fn tdac_outcomes_are_kernel_invariant_at_every_thread_count() {
    let world = generate_synthetic(&SyntheticConfig::ds1().scaled(60));
    // 0 = Parallelism::Auto.
    check_kernel_outcome_invariance(&MajorityVote, &world.dataset, &[2, 8, 0]);
    check_kernel_outcome_invariance(&Accu::default(), &world.dataset, &[2, 8, 0]);
}

#[test]
fn ds1_golden_is_kernel_invariant() {
    // Dense @ T1 plus Packed @ {T1, T2, T8, Auto}, each diffed against
    // the committed golden (produced under the default Auto policy).
    check_ds1_kernel_parity().expect("kernel choice must not move the DS1 table");
}
