//! `.tds` store verification: the corruption matrix (every class of
//! hostile file yields a typed [`StoreError`] naming the section — never
//! a panic, never an allocation sized by unvalidated input), arbitrary-
//! bytes fuzzing, and the round-trip property: an arbitrary dataset
//! saved and loaded must produce bit-identical TD-AC outcomes at every
//! thread count and under every distance-kernel policy, and re-encoding
//! a loaded store must reproduce the file byte-for-byte.

use proptest::prelude::*;
use td_algorithms::MajorityVote;
use td_model::{Dataset, DatasetBuilder, Value};
use td_store::{fnv1a, section_table, DatasetStore, StoreError};
use td_verify::OutcomeFingerprint;
use tdac_core::{ExecutionBackend, KernelPolicy, Parallelism, Tdac, TdacConfig};

/// A small planted-structure dataset with a packed truth page — the
/// corruption matrix's victim file.
fn victim_bytes() -> Vec<u8> {
    let mut b = DatasetBuilder::new();
    for o in 0..5i64 {
        let obj = format!("o{o}");
        for ai in 0..4u32 {
            let a = format!("a{ai}");
            let good = if ai < 2 { ["s1", "s2"] } else { ["s3", "s4"] };
            let bad = if ai < 2 { ["s3", "s4"] } else { ["s1", "s2"] };
            for s in good {
                b.claim(s, &obj, &a, Value::int(o)).unwrap();
            }
            for (i, s) in bad.iter().enumerate() {
                b.claim(s, &obj, &a, Value::int(1000 * (i as i64 + 1) + o)).unwrap();
            }
        }
    }
    let dataset = b.build();
    Tdac::new(TdacConfig::default())
        .pack(&MajorityVote, &dataset)
        .to_bytes()
}

/// Patch `len` bytes at `offset` and fix up the section table's stored
/// checksum for the section containing the patch, so the corruption
/// reaches the *decoder* instead of tripping the checksum gate.
fn patch_and_rehash(bytes: &mut [u8], section: &str, patch_at: usize, patch: &[u8]) {
    let info = section_table(bytes)
        .unwrap()
        .into_iter()
        .find(|s| s.name == section)
        .unwrap_or_else(|| panic!("no section {section}"));
    let (off, len) = (info.offset as usize, info.len as usize);
    bytes[off + patch_at..off + patch_at + patch.len()].copy_from_slice(patch);
    let sum = fnv1a(&bytes[off..off + len]);
    // Section-table entries are 32 bytes starting after the 16-byte
    // header: {kind u32, pad u32, offset u64, len u64, checksum u64}.
    let n_sections = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    for i in 0..n_sections {
        let entry = 16 + i * 32;
        let eoff = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap());
        if eoff as usize == off {
            bytes[entry + 24..entry + 32].copy_from_slice(&sum.to_le_bytes());
            return;
        }
    }
    panic!("section entry for {section} not found");
}

#[test]
fn truncated_header_is_typed() {
    let bytes = victim_bytes();
    for cut in [0, 3, 10, 15] {
        match DatasetStore::from_bytes(&bytes[..cut]) {
            Err(StoreError::TruncatedHeader { len }) => assert_eq!(len, cut),
            other => panic!("cut at {cut}: expected TruncatedHeader, got {other:?}"),
        }
    }
    // Truncation inside the section table is also a header-level error.
    match DatasetStore::from_bytes(&bytes[..20]) {
        Err(StoreError::TruncatedHeader { .. }) => {}
        other => panic!("expected TruncatedHeader, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = victim_bytes();
    bytes[0] = b'X';
    match DatasetStore::from_bytes(&bytes) {
        Err(StoreError::BadMagic { found }) => assert_eq!(&found[1..], b"DS1"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn unsupported_version_is_typed() {
    let mut bytes = victim_bytes();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    match DatasetStore::from_bytes(&bytes) {
        Err(StoreError::UnsupportedVersion { found }) => assert_eq!(found, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn flipped_payload_byte_names_the_damaged_section() {
    let pristine = victim_bytes();
    for section in ["sources", "objects", "attributes", "values", "claims", "truth_pages"] {
        let info = section_table(&pristine)
            .unwrap()
            .into_iter()
            .find(|s| s.name == section)
            .unwrap();
        let mut bytes = pristine.clone();
        let mid = info.offset as usize + info.len as usize / 2;
        bytes[mid] ^= 0x40;
        match DatasetStore::from_bytes(&bytes) {
            Err(StoreError::ChecksumMismatch { section: got }) => assert_eq!(got, section),
            other => panic!("{section}: expected ChecksumMismatch, got {other:?}"),
        }
    }
}

#[test]
fn out_of_bounds_section_is_typed() {
    let pristine = victim_bytes();
    // Stretch each section's declared length past the end of the file.
    let n_sections = u32::from_le_bytes(pristine[8..12].try_into().unwrap()) as usize;
    for i in 0..n_sections {
        let mut bytes = pristine.clone();
        let entry = 16 + i * 32;
        bytes[entry + 16..entry + 24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        match DatasetStore::from_bytes(&bytes) {
            Err(StoreError::SectionOutOfBounds { section }) => {
                assert!(!section.is_empty());
            }
            other => panic!("entry {i}: expected SectionOutOfBounds, got {other:?}"),
        }
    }
}

#[test]
fn hostile_counts_fail_before_allocating() {
    // Declare ~4 billion sources in a tiny file (checksum fixed up so
    // the decoder actually sees the count). A naive
    // `Vec::with_capacity(count)` would try to allocate gigabytes; the
    // decoder must reject against the section's byte length instead.
    let mut bytes = victim_bytes();
    patch_and_rehash(&mut bytes, "sources", 0, &u32::MAX.to_le_bytes());
    match DatasetStore::from_bytes(&bytes) {
        Err(StoreError::Corrupt { section, .. }) => assert_eq!(section, "sources"),
        other => panic!("expected Corrupt(sources), got {other:?}"),
    }
    // Same for the claims table and the truth-page count.
    let mut bytes = victim_bytes();
    patch_and_rehash(&mut bytes, "claims", 0, &u32::MAX.to_le_bytes());
    match DatasetStore::from_bytes(&bytes) {
        Err(StoreError::Corrupt { section, .. }) => assert_eq!(section, "claims"),
        other => panic!("expected Corrupt(claims), got {other:?}"),
    }
    let mut bytes = victim_bytes();
    patch_and_rehash(&mut bytes, "truth_pages", 0, &u32::MAX.to_le_bytes());
    match DatasetStore::from_bytes(&bytes) {
        Err(StoreError::Corrupt { section, .. }) => assert_eq!(section, "truth_pages"),
        other => panic!("expected Corrupt(truth_pages), got {other:?}"),
    }
}

#[test]
fn claim_ids_out_of_range_are_corrupt_not_panics() {
    // Claims are 16-byte (source, object, attribute, value) u32 rows;
    // point the first claim's source id far out of range.
    let mut bytes = victim_bytes();
    patch_and_rehash(&mut bytes, "claims", 8, &0xdead_beefu32.to_le_bytes());
    match DatasetStore::from_bytes(&bytes) {
        // Either the store layer (id-range validation) or the model
        // layer (dataset assembly) may catch it — both are typed.
        Err(StoreError::Corrupt { .. } | StoreError::Model(_)) => {}
        other => panic!("expected Corrupt or Model, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the loader and never succeed in
    /// building a store out of garbage lacking the magic.
    #[test]
    fn fuzzed_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(store) = DatasetStore::from_bytes(&bytes) {
            // Vanishingly unlikely, but if it parses it must be coherent.
            prop_assert_eq!(store.to_bytes().len(), bytes.len());
        }
    }

    /// Single-byte mutations of a valid file never panic; they either
    /// fail with a typed error or (for bytes the format ignores, e.g.
    /// inside alignment padding counted by a checksum) still decode.
    #[test]
    fn mutated_valid_files_never_panic(
        pos in 0usize..4096,
        mask in 1u32..=255,
    ) {
        let mut bytes = victim_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask as u8;
        let _ = DatasetStore::from_bytes(&bytes);
    }
}

/// Strategy: a small random-but-conflict-free dataset. Dimensions stay
/// tiny (TD-AC sweeps are quadratic) while covering degenerate shapes:
/// single-group, missing claims, value collisions across cells.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        2usize..=4,              // sources
        2usize..=4,              // objects
        3usize..=5,              // attributes
        proptest::collection::vec(0u32..=3, 12..=80), // claim value picks
        any::<u64>(),            // claim-presence bits
    )
        .prop_map(|(ns, no, na, values, presence)| {
            let mut b = DatasetBuilder::new();
            let mut vi = 0;
            let mut bit = 0;
            for s in 0..ns {
                for o in 0..no {
                    for a in 0..na {
                        // Drop ~1/4 of claims to vary coverage, but keep
                        // source s0 complete so the dataset never ends up
                        // empty or attribute-less.
                        let drop = s > 0 && (presence >> (bit % 64)) & 0x3 == 0;
                        bit += 1;
                        if drop {
                            continue;
                        }
                        let v = values[vi % values.len()] as i64;
                        vi += 1;
                        b.claim(
                            &format!("s{s}"),
                            &format!("o{o}"),
                            &format!("a{a}"),
                            Value::int(v),
                        )
                        .unwrap();
                    }
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole round-trip property: pack -> encode -> decode, then
    /// run TD-AC from the store at every thread count and under both
    /// forced distance-kernel policies. Every outcome must fingerprint
    /// bit-identically to the in-memory run with the same config, and
    /// decode -> encode must be the byte identity.
    #[test]
    fn roundtrip_outcomes_are_bit_identical_across_threads_and_kernels(
        dataset in arb_dataset()
    ) {
        let store = Tdac::new(TdacConfig::default()).pack(&MajorityVote, &dataset);
        let bytes = store.to_bytes();
        let loaded = DatasetStore::from_bytes(&bytes).expect("own encoding must decode");
        prop_assert_eq!(loaded.to_bytes(), bytes, "save -> load -> save must be stable");

        for threads in [1usize, 2, 8] {
            for kernel in [KernelPolicy::Dense, KernelPolicy::Packed] {
                let config = TdacConfig {
                    backend: ExecutionBackend::in_process(Parallelism::Threads(threads)),
                    kernel,
                    ..Default::default()
                };
                let tdac = Tdac::new(config);
                let from_store = tdac
                    .run_store(&MajorityVote, &loaded)
                    .expect("store-backed run");
                let in_memory = tdac.run(&MajorityVote, &dataset).expect("in-memory run");
                let (a, b) = (
                    OutcomeFingerprint::of(&from_store),
                    OutcomeFingerprint::of(&in_memory),
                );
                if let Some(diff) = a.diff(&b) {
                    panic!("threads={threads} kernel={kernel:?}: {diff}");
                }
            }
        }
    }
}

#[test]
fn save_and_load_through_the_filesystem() {
    let dataset = {
        let mut b = DatasetBuilder::new();
        for o in 0..4i64 {
            for a in ["a0", "a1", "a2"] {
                b.claim("s1", &format!("o{o}"), a, Value::int(o)).unwrap();
                b.claim("s2", &format!("o{o}"), a, Value::int(o)).unwrap();
                b.claim("s3", &format!("o{o}"), a, Value::int(o + 50)).unwrap();
            }
        }
        b.build()
    };
    let store = Tdac::new(TdacConfig::default()).pack(&MajorityVote, &dataset);
    let path = std::env::temp_dir().join(format!("td-verify-store-{}.tds", std::process::id()));
    store.save(&path).expect("save");
    let loaded = DatasetStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.to_bytes(), store.to_bytes());
    let tdac = Tdac::new(TdacConfig::default());
    let a = OutcomeFingerprint::of(&tdac.run_store(&MajorityVote, &loaded).unwrap());
    let b = OutcomeFingerprint::of(&tdac.run(&MajorityVote, &dataset).unwrap());
    assert_eq!(a, b);
}
