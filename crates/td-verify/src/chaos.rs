//! Chaos-injection harness: faults fired at precise phase boundaries.
//!
//! The pipeline never installs a [`PhaseHook`] itself; this module does,
//! turning the observability layer's span taxonomy into a fault-injection
//! surface. A [`ChaosHook`] watches for a target phase path (`k_sweep`,
//! `per_group_run/group=0`, `partition_scan/partition`, …) and on its
//! n-th hit either **panics** (simulating a poisoned worker), **delays**
//! (simulating a stall, to trip deadlines), or **cancels** a
//! [`CancelToken`] (simulating an operator abort mid-flight).
//!
//! The chaos oracles (`tests/chaos.rs`) then assert the robustness
//! contract of the execution-limits layer:
//!
//! 1. every injected fault surfaces as a *typed* error
//!    (`TdError::WorkerPanic` naming the phase) or a *flagged* degraded
//!    outcome — never a process abort, never a silently wrong result;
//! 2. with limits disabled the pipeline is byte-identical to the
//!    committed DS1 golden — the robustness layer is invisible when off;
//! 3. counter-budget degraded outcomes are bit-identical at any thread
//!    count.
//!
//! Because a hook panic unwinds from exactly where pipeline code would
//! panic (the span-open or checkpoint call site), surviving chaos here
//! is evidence the `catch_unwind` task boundaries cover the real failure
//! points, not a parallel reimplementation of them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdac_core::{CancelToken, Observer, PhaseHook};

/// What a [`ChaosHook`] does when its target boundary is hit.
#[derive(Debug, Clone)]
enum Fault {
    /// Panic with this message (the phase path is appended).
    Panic(String),
    /// Sleep this long, then continue — pairs with a deadline budget.
    Delay(Duration),
    /// Trip this token, then continue — exercises cooperative cancel.
    Cancel(CancelToken),
}

/// A [`PhaseHook`] that fires one fault at the n-th hit of a target
/// phase path, and counts every hit either way.
///
/// Matching is exact, or by prefix when the target ends with `/` —
/// `"k_sweep/"` matches every per-k span while `"k_sweep"` matches only
/// the outer sweep span.
pub struct ChaosHook {
    target: String,
    nth: u64,
    fault: Fault,
    hits: AtomicU64,
    fired: AtomicBool,
}

impl ChaosHook {
    fn new(target: impl Into<String>, nth: u64, fault: Fault) -> Arc<Self> {
        assert!(nth >= 1, "faults fire on the n-th hit, counted from 1");
        Arc::new(Self {
            target: target.into(),
            nth,
            fault,
            hits: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    /// Panics at the `nth` hit of `target` (counted from 1).
    pub fn panics_at(target: impl Into<String>, nth: u64) -> Arc<Self> {
        Self::new(target, nth, Fault::Panic("chaos: injected panic".to_string()))
    }

    /// Sleeps `delay` at the `nth` hit of `target`, then continues.
    pub fn delays_at(target: impl Into<String>, nth: u64, delay: Duration) -> Arc<Self> {
        Self::new(target, nth, Fault::Delay(delay))
    }

    /// Cancels `token` at the `nth` hit of `target`, then continues.
    pub fn cancels_at(target: impl Into<String>, nth: u64, token: CancelToken) -> Arc<Self> {
        Self::new(target, nth, Fault::Cancel(token))
    }

    /// An enabled [`Observer`] carrying this hook — what the test hands
    /// to `TdacConfig::observer` / `AccuGenPartition::observer`.
    pub fn observer(self: &Arc<Self>) -> Observer {
        Observer::with_hook(Arc::clone(self) as Arc<dyn PhaseHook>)
    }

    /// How many times the target boundary was hit.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Whether the fault actually fired (the n-th hit was reached).
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn matches(&self, path: &str) -> bool {
        path == self.target
            || (self.target.ends_with('/') && path.starts_with(self.target.as_str()))
    }
}

impl PhaseHook for ChaosHook {
    fn on_phase(&self, path: &str) {
        if !self.matches(path) {
            return;
        }
        let hit = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if hit == self.nth {
            self.fired.store(true, Ordering::SeqCst);
            match &self.fault {
                Fault::Panic(msg) => panic!("{msg} at `{path}`"),
                Fault::Delay(d) => std::thread::sleep(*d),
                Fault::Cancel(token) => token.cancel(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_prefix_matching() {
        let h = ChaosHook::delays_at("k_sweep", 99, Duration::ZERO);
        h.on_phase("k_sweep");
        h.on_phase("k_sweep/k=2");
        h.on_phase("merge");
        assert_eq!(h.hits(), 1, "bare target is exact");
        let h = ChaosHook::delays_at("k_sweep/", 99, Duration::ZERO);
        h.on_phase("k_sweep");
        h.on_phase("k_sweep/k=2");
        h.on_phase("k_sweep/k=3");
        assert_eq!(h.hits(), 2, "trailing slash is a prefix match");
        assert!(!h.fired());
    }

    #[test]
    fn panic_fires_only_on_the_nth_hit() {
        let h = ChaosHook::panics_at("cluster", 3);
        h.on_phase("cluster");
        h.on_phase("cluster");
        assert!(!h.fired());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.on_phase("cluster");
        }))
        .unwrap_err();
        assert!(h.fired());
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("chaos: injected panic at `cluster`"), "{msg}");
        // Hits past the n-th pass through untouched.
        h.on_phase("cluster");
        assert_eq!(h.hits(), 4);
    }

    #[test]
    fn cancel_fault_trips_the_token() {
        let token = CancelToken::new();
        let h = ChaosHook::cancels_at("truth_vectors", 1, token.clone());
        assert!(!token.is_cancelled());
        h.on_phase("truth_vectors");
        assert!(token.is_cancelled());
        assert!(h.fired());
    }

    #[test]
    fn observer_carries_the_hook() {
        let h = ChaosHook::cancels_at("phase_x", 1, CancelToken::new());
        let obs = h.observer();
        obs.checkpoint("phase_y");
        assert_eq!(h.hits(), 0);
        obs.checkpoint("phase_x");
        assert_eq!(h.hits(), 1);
        let _span = obs.span("phase_x");
        assert_eq!(h.hits(), 2, "span opens fire the hook too");
    }
}
