#![warn(missing_docs)]

//! # td-verify — the workspace's verification harness
//!
//! Three independent layers of evidence that the TD-AC stack computes
//! what the paper says, documented in `docs/VERIFICATION.md`:
//!
//! 1. **Differential oracles** ([`oracle`], [`worlds`], [`kernels`]) —
//!    TD-AC checked against the brute-force AccuGenPartition search on
//!    separable micro-worlds where the exact optimum is known, against a
//!    replay of its own chosen partition on any input, against itself at
//!    pinned thread counts (`Threads(1)` / `Threads(2)` / `Threads(8)`),
//!    and against itself under every distance-kernel policy (`Dense` /
//!    `Packed` / `Auto`), all compared through bit-exact
//!    [`fingerprint`]s.
//! 2. **Metamorphic invariants** (the `tests/` suites of this crate and
//!    of `clustering` / `td-metrics`) — properties that must hold under
//!    input transformations: relabeling sources/objects, shuffling claim
//!    order, duplicating claims, removing claims (DCR monotonicity).
//! 3. **Paper-conformance goldens** ([`golden`], [`store`]) — committed
//!    DS1 preset tables plus a committed `.tds` binary store, both
//!    checked bit-exactly by tier-1 and regenerable only through the
//!    explicit `--bless` flow. The store golden additionally gates the
//!    hostile-input contract of the `.tds` decoder (`tests/store.rs`:
//!    corruption matrix, fuzzing, round-trip properties).
//! 4. **Chaos oracles** ([`chaos`], `tests/chaos.rs`) — faults (panics,
//!    stalls, cancellations) injected at phase boundaries through the
//!    observability hook, proving every failure surfaces as a typed
//!    error or a flagged degraded outcome, never an abort or a silently
//!    wrong result, and that the limits layer is bit-invisible when off.
//!
//! The expensive Bell-number oracle cases (`|A|` = 7 / 8, up to 4140
//! partitions per sweep) sit behind the `expensive-oracles` feature so
//! the default test run stays fast; `scripts/verify.sh` turns them on.

pub mod chaos;
pub mod fingerprint;
pub mod golden;
pub mod kernels;
pub mod oracle;
pub mod store;
pub mod worlds;

pub use chaos::ChaosHook;
pub use fingerprint::{assert_bit_identical, OutcomeFingerprint, ResultFingerprint};
pub use golden::{bless_ds1, check_ds1, compute_ds1, Ds1Golden};
pub use store::{bless_ds1_store, check_ds1_store, compute_ds1_store};
pub use kernels::{check_ds1_kernel_parity, check_kernel_outcome_invariance, check_kernel_parity};
pub use worlds::{separable_world, SmallWorld};
