//! Kernel-parity oracles: the bit-packed popcount Hamming kernel must be
//! a pure performance substitution — every distance it produces, and
//! every downstream outcome built on those distances, is bit-for-bit
//! what the dense `f64` reference path computes.
//!
//! Three layers of evidence, mirroring the structure of [`crate::oracle`]:
//!
//! 1. **Raw matrices** — [`check_kernel_parity`] builds the truth
//!    vectors of a real dataset and compares the full pairwise matrix
//!    under [`KernelPolicy::Dense`] vs [`KernelPolicy::Packed`] (and the
//!    masked variant) with `to_bits` equality, no epsilon.
//! 2. **Non-vacuity** — the packed run must actually have taken the
//!    packed path (`packed_kernel_invocations` / `words_xored` counters
//!    fire) and the dense run must not, so parity is never "both sides
//!    ran the same code".
//! 3. **End-to-end fingerprints** — full TD-AC outcomes under `Dense`,
//!    `Packed`, and `Auto` at pinned thread counts all collapse to one
//!    [`OutcomeFingerprint`]; [`check_ds1_kernel_parity`] does the same
//!    for the committed DS1 golden table.

use clustering::{pairwise_distances, DistanceOptions, KernelPolicy};
use td_algorithms::TruthDiscovery;
use td_model::Dataset;
use tdac_core::{
    truth_vector_set, MaskedTruthVectors, Observer, Parallelism, Tdac, TdacConfig,
};

use crate::fingerprint::OutcomeFingerprint;
use crate::golden::{compute_ds1_with, diff_ds1, golden_path, Ds1Golden};

/// Asserts `got` and `want` are bit-identical distance matrices,
/// panicking with the first diverging entry.
fn assert_same_matrix(got: &[f64], want: &[f64], n: usize, context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: matrix sizes differ");
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{context}: d({}, {}) = {g:e} (packed) vs {w:e} (dense)",
            idx / n,
            idx % n,
        );
    }
}

/// Distance matrix of `base`'s truth vectors on `dataset` under a pinned
/// kernel, plus the profile of the build.
fn matrix_under(
    base: &dyn TruthDiscovery,
    dataset: &Dataset,
    kernel: KernelPolicy,
) -> (Vec<f64>, tdac_core::RunProfile) {
    let observer = Observer::enabled();
    let (vectors, _) = truth_vector_set(base, &dataset.view_all(), &Observer::disabled());
    let opts = DistanceOptions::builder()
        .kernel(kernel)
        .observer(observer.clone())
        .build();
    let config = TdacConfig::default();
    let dist = opts.pairwise(vectors.rows(), config.metric.as_metric());
    let profile = observer.profile().expect("enabled observer yields a profile");
    (dist, profile)
}

/// Layer 1 + 2: raw matrix parity with non-vacuity, for both the plain
/// Eq. 1 truth vectors and the masked (missing-aware) variant.
///
/// Panics with the first diverging matrix entry or a vacuity failure.
pub fn check_kernel_parity(base: &dyn TruthDiscovery, dataset: &Dataset) {
    // Plain truth vectors.
    let (dense, dense_profile) = matrix_under(base, dataset, KernelPolicy::Dense);
    let (packed, packed_profile) = matrix_under(base, dataset, KernelPolicy::Packed);
    let (auto, _) = matrix_under(base, dataset, KernelPolicy::Auto);
    let n = dataset.n_attributes();
    assert_same_matrix(&packed, &dense, n, "packed vs dense pairwise Hamming");
    assert_same_matrix(&auto, &dense, n, "auto vs dense pairwise Hamming");

    // Non-vacuity: the two runs must have taken different code paths.
    assert_eq!(
        dense_profile.counter("packed_kernel_invocations"),
        Some(0),
        "KernelPolicy::Dense leaked into the packed kernel"
    );
    if n >= 2 {
        assert!(
            packed_profile.counter("packed_kernel_invocations").unwrap_or(0) > 0,
            "KernelPolicy::Packed never reached the packed kernel — parity is vacuous"
        );
        assert!(
            packed_profile.counter("words_xored").unwrap_or(0) > 0,
            "packed kernel reported no XORed words"
        );
        // Both paths must report identical logical work (Eq. 2 pair count).
        assert_eq!(
            packed_profile.counter("distance_evals"),
            dense_profile.counter("distance_evals"),
            "packed and dense runs disagree on the number of distance evaluations"
        );
    }

    // The one-argument convenience entry point is the Auto path.
    let (vectors, _) = truth_vector_set(base, &dataset.view_all(), &Observer::disabled());
    let config = TdacConfig::default();
    let convenience =
        pairwise_distances(vectors.rows(), config.metric.as_metric(), &Observer::disabled());
    assert_same_matrix(&convenience, &dense, n, "pairwise_distances() vs dense");

    // Masked (missing-aware) truth vectors.
    let masked_under = |kernel| {
        let observer = Observer::enabled();
        let (masked, _) = MaskedTruthVectors::build(base, &dataset.view_all(), &Observer::disabled());
        let opts = DistanceOptions::builder()
            .kernel(kernel)
            .observer(observer.clone())
            .build();
        let dist = masked.distance_matrix_with(&opts);
        (dist, observer.profile().expect("enabled observer yields a profile"))
    };
    let (m_dense, m_dense_profile) = masked_under(KernelPolicy::Dense);
    let (m_packed, m_packed_profile) = masked_under(KernelPolicy::Packed);
    assert_same_matrix(&m_packed, &m_dense, n, "packed vs dense masked Hamming");
    assert_eq!(
        m_dense_profile.counter("packed_kernel_invocations"),
        Some(0),
        "masked KernelPolicy::Dense leaked into the packed kernel"
    );
    if n >= 2 {
        assert!(
            m_packed_profile.counter("packed_kernel_invocations").unwrap_or(0) > 0,
            "masked KernelPolicy::Packed never reached the packed kernel"
        );
    }
}

/// Layer 3: full TD-AC outcomes under every kernel policy at pinned
/// thread counts (`0` meaning [`Parallelism::Auto`]) must collapse to
/// one fingerprint. Returns the common fingerprint.
pub fn check_kernel_outcome_invariance(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    threads: &[usize],
) -> OutcomeFingerprint {
    let run = |kernel, parallelism| {
        Tdac::new(TdacConfig {
            kernel,
            backend: tdac_core::ExecutionBackend::in_process(parallelism),
            ..TdacConfig::default()
        })
        .run(base, dataset)
        .expect("non-empty dataset")
    };
    let reference =
        OutcomeFingerprint::of(&run(KernelPolicy::Dense, Parallelism::Threads(1)));
    for kernel in [KernelPolicy::Dense, KernelPolicy::Packed, KernelPolicy::Auto] {
        let mut cases = vec![Parallelism::Threads(1)];
        cases.extend(threads.iter().map(|&t| {
            if t == 0 {
                Parallelism::Auto
            } else {
                Parallelism::Threads(t)
            }
        }));
        for &parallelism in &cases {
            let got = OutcomeFingerprint::of(&run(kernel, parallelism));
            assert_eq!(
                got, reference,
                "{kernel:?} at {parallelism:?} diverges from the Dense Threads(1) reference"
            );
        }
    }
    reference
}

/// The committed DS1 golden was produced under the default
/// `KernelPolicy::Auto`; recomputing the whole table with the kernel
/// pinned `Dense` and pinned `Packed` — the latter at `Threads(1)`,
/// `Threads(2)`, `Threads(8)`, and `Auto` — must reproduce it
/// bit-exactly. Any divergence means the packed kernel changed results,
/// which is never legitimate (it is a performance knob, not a semantics
/// switch).
pub fn check_ds1_kernel_parity() -> Result<(), String> {
    let path = golden_path();
    let committed = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read golden {}: {e}", path.display()))?;
    let committed: Ds1Golden = serde_json::from_str(&committed)
        .map_err(|e| format!("golden {} is not valid JSON: {e:?}", path.display()))?;

    let with = |kernel, parallelism| {
        compute_ds1_with(&TdacConfig {
            kernel,
            backend: tdac_core::ExecutionBackend::in_process(parallelism),
            ..TdacConfig::default()
        })
    };
    let cases = [
        ("Dense @ Threads(1)", KernelPolicy::Dense, Parallelism::Threads(1)),
        ("Packed @ Threads(1)", KernelPolicy::Packed, Parallelism::Threads(1)),
        ("Packed @ Threads(2)", KernelPolicy::Packed, Parallelism::Threads(2)),
        ("Packed @ Threads(8)", KernelPolicy::Packed, Parallelism::Threads(8)),
        ("Packed @ Auto", KernelPolicy::Packed, Parallelism::Auto),
    ];
    for (label, kernel, parallelism) in cases {
        if let Some(diff) = diff_ds1(&committed, &with(kernel, parallelism)) {
            return Err(format!(
                "DS1 under {label} diverges from the committed golden: {diff}"
            ));
        }
    }
    Ok(())
}
