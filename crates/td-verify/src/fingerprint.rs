//! Canonical bit-exact fingerprints of truth-discovery outcomes.
//!
//! The parallel-execution contract of this workspace is *bit identity*:
//! the same configuration must produce the same [`TruthResult`] at any
//! thread count. [`TruthResult`] itself cannot be compared directly —
//! its prediction map iterates in hash order and `f64` does not
//! implement `Eq` — so the harness canonicalizes results into sorted,
//! bit-pattern form first. Two fingerprints are equal **iff** every
//! prediction, every confidence bit, every trust bit, and the iteration
//! counter agree.

use td_algorithms::TruthResult;
use td_model::{AttributeId, ObjectId, ValueId};
use tdac_core::{AccuGenOutcome, TdacOutcome};

/// A canonical, totally ordered, `Eq`-comparable image of a
/// [`TruthResult`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultFingerprint {
    /// `(object, attribute, value, confidence bits)` sorted by cell.
    pub predictions: Vec<(ObjectId, AttributeId, ValueId, u64)>,
    /// Per-source trust, as raw bit patterns.
    pub source_trust: Vec<u64>,
    /// Outer iteration count.
    pub iterations: u32,
}

impl ResultFingerprint {
    /// Canonicalizes a result.
    pub fn of(result: &TruthResult) -> Self {
        let mut predictions: Vec<_> = result
            .iter()
            .map(|(o, a, v, c)| (o, a, v, c.to_bits()))
            .collect();
        predictions.sort_unstable_by_key(|&(o, a, _, _)| (o, a));
        Self {
            predictions,
            source_trust: result.source_trust.iter().map(|t| t.to_bits()).collect(),
            iterations: result.iterations,
        }
    }

    /// First difference against another fingerprint, as a human-readable
    /// description — `None` when bit-identical. Used by the differential
    /// suites to fail with *which cell diverged* instead of two opaque
    /// dumps.
    pub fn diff(&self, other: &ResultFingerprint) -> Option<String> {
        if self.predictions.len() != other.predictions.len() {
            return Some(format!(
                "prediction counts differ: {} vs {}",
                self.predictions.len(),
                other.predictions.len()
            ));
        }
        for (a, b) in self.predictions.iter().zip(&other.predictions) {
            if a != b {
                return Some(format!(
                    "cell ({}, {}): value {} conf {:e} vs value {} conf {:e}",
                    a.0,
                    a.1,
                    a.2,
                    f64::from_bits(a.3),
                    b.2,
                    f64::from_bits(b.3)
                ));
            }
        }
        if self.source_trust != other.source_trust {
            let i = self
                .source_trust
                .iter()
                .zip(&other.source_trust)
                .position(|(x, y)| x != y);
            return Some(match i {
                Some(i) => format!(
                    "source trust [{i}]: {:e} vs {:e}",
                    f64::from_bits(self.source_trust[i]),
                    f64::from_bits(other.source_trust[i])
                ),
                None => format!(
                    "trust lengths differ: {} vs {}",
                    self.source_trust.len(),
                    other.source_trust.len()
                ),
            });
        }
        if self.iterations != other.iterations {
            return Some(format!(
                "iterations: {} vs {}",
                self.iterations, other.iterations
            ));
        }
        None
    }

    /// The predictions only, for comparisons where trust vectors are
    /// legitimately incomparable (e.g. a global run vs a merged
    /// per-partition run, whose trusts are per-view accuracies).
    pub fn predictions_only(&self) -> &[(ObjectId, AttributeId, ValueId, u64)] {
        &self.predictions
    }
}

/// Canonical image of a whole TD-AC outcome (result plus the model
/// selection that produced it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeFingerprint {
    /// The merged result.
    pub result: ResultFingerprint,
    /// The selected partition, rendered canonically.
    pub partition: String,
    /// Bit pattern of the winning silhouette.
    pub silhouette: u64,
    /// `(k, silhouette bits)` for the whole sweep.
    pub k_scores: Vec<(usize, u64)>,
    /// Whether the run fell back to the un-partitioned base run.
    pub fallback: bool,
}

impl OutcomeFingerprint {
    /// Canonicalizes a TD-AC outcome.
    pub fn of(outcome: &TdacOutcome) -> Self {
        Self {
            result: ResultFingerprint::of(&outcome.result),
            partition: outcome.partition.to_string(),
            silhouette: outcome.silhouette.to_bits(),
            k_scores: outcome
                .k_scores
                .iter()
                .map(|&(k, s)| (k, s.to_bits()))
                .collect(),
            fallback: outcome.fallback,
        }
    }

    /// Canonicalizes an AccuGenPartition outcome (the sweep fields that
    /// do not apply are left empty).
    pub fn of_accugen(outcome: &AccuGenOutcome) -> Self {
        Self {
            result: ResultFingerprint::of(&outcome.result),
            partition: outcome.partition.to_string(),
            silhouette: outcome.score.to_bits(),
            k_scores: Vec::new(),
            fallback: false,
        }
    }

    /// First difference against another outcome fingerprint, as a
    /// human-readable description — `None` when bit-identical.
    pub fn diff(&self, other: &OutcomeFingerprint) -> Option<String> {
        if let Some(d) = self.result.diff(&other.result) {
            return Some(d);
        }
        if self.partition != other.partition {
            return Some(format!(
                "partition: {} vs {}",
                self.partition, other.partition
            ));
        }
        if self.silhouette != other.silhouette {
            return Some(format!(
                "silhouette: {:e} vs {:e}",
                f64::from_bits(self.silhouette),
                f64::from_bits(other.silhouette)
            ));
        }
        if self.k_scores != other.k_scores {
            return Some(format!(
                "k_scores: {:?} vs {:?}",
                self.k_scores, other.k_scores
            ));
        }
        if self.fallback != other.fallback {
            return Some(format!(
                "fallback: {} vs {}",
                self.fallback, other.fallback
            ));
        }
        None
    }
}

/// Panics with a contextualized first-difference message unless the two
/// results are bit-identical.
pub fn assert_bit_identical(a: &TruthResult, b: &TruthResult, context: &str) {
    let (fa, fb) = (ResultFingerprint::of(a), ResultFingerprint::of(b));
    if let Some(diff) = fa.diff(&fb) {
        panic!("{context}: results are not bit-identical — {diff}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cells: &[(u32, u32, u32, f64)], trust: &[f64]) -> TruthResult {
        let mut r = TruthResult::with_sources(0, 0.0);
        r.source_trust = trust.to_vec();
        for &(o, a, v, c) in cells {
            r.set_prediction(ObjectId::new(o), AttributeId::new(a), ValueId::new(v), c);
        }
        r
    }

    #[test]
    fn identical_results_fingerprint_equal() {
        let a = result(&[(0, 0, 1, 0.5), (1, 0, 2, 0.25)], &[0.1, 0.9]);
        let b = result(&[(1, 0, 2, 0.25), (0, 0, 1, 0.5)], &[0.1, 0.9]);
        assert_eq!(ResultFingerprint::of(&a), ResultFingerprint::of(&b));
        assert!(ResultFingerprint::of(&a).diff(&ResultFingerprint::of(&b)).is_none());
        assert_bit_identical(&a, &b, "insertion order must not matter");
    }

    #[test]
    fn one_ulp_of_confidence_is_detected() {
        let a = result(&[(0, 0, 1, 0.5)], &[]);
        let b = result(&[(0, 0, 1, f64::from_bits(0.5f64.to_bits() + 1))], &[]);
        let diff = ResultFingerprint::of(&a)
            .diff(&ResultFingerprint::of(&b))
            .expect("one ulp apart");
        assert!(diff.contains("cell (o0, a0)"), "{diff}");
    }

    #[test]
    fn trust_difference_is_located() {
        let a = result(&[], &[0.5, 0.5]);
        let b = result(&[], &[0.5, 0.5 + 1e-16]);
        let diff = ResultFingerprint::of(&a)
            .diff(&ResultFingerprint::of(&b))
            .expect("trust differs");
        assert!(diff.contains("source trust [1]"), "{diff}");
    }

    #[test]
    fn negative_zero_is_not_positive_zero() {
        // Bit identity is stricter than numeric equality — by design.
        let a = result(&[(0, 0, 1, 0.0)], &[]);
        let b = result(&[(0, 0, 1, -0.0)], &[]);
        assert_ne!(ResultFingerprint::of(&a), ResultFingerprint::of(&b));
    }
}
