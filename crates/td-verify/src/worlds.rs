//! Hand-built *separable* micro-worlds for the differential oracles.
//!
//! The worlds are small enough (Bell(|A|) partitions fit in seconds) for
//! AccuGenPartition's exhaustive search to act as a ground-truth oracle,
//! yet structured so the exact optimum is knowable in closed form:
//!
//! * attributes come in planted groups;
//! * every group has two **specialist** sources that claim the true
//!   value on every cell of their group;
//! * outside its group a specialist claims a wrong value that is unique
//!   to `(source, attribute, object)` — wrong claims never agree.
//!
//! Consequently every cell has exactly two votes for the truth and one
//! vote for each wrong value, so per-cell plurality is correct on *any*
//! attribute sub-view. A perfect-accuracy partition exists (every
//! partition is one), the exhaustive oracle must reach accuracy 1.0, and
//! TD-AC must tie it — an exact differential target with no tolerance.

use td_model::{Dataset, DatasetBuilder, GroundTruth, Value};
use tdac_core::AttributePartition;

/// A micro-world: claims, full ground truth, and the planted grouping.
#[derive(Debug, Clone)]
pub struct SmallWorld {
    /// The claims.
    pub dataset: Dataset,
    /// Truth for every cell.
    pub truth: GroundTruth,
    /// The planted attribute grouping (as interned ids).
    pub planted: AttributePartition,
}

/// Builds a separable world with `group_sizes.len()` planted groups of
/// the given sizes and `n_objects` objects. Attribute count is the sum
/// of the sizes; source count is `2 × groups`.
///
/// # Panics
/// If any group is empty or there are no objects.
pub fn separable_world(group_sizes: &[usize], n_objects: usize) -> SmallWorld {
    assert!(!group_sizes.is_empty() && group_sizes.iter().all(|&g| g > 0));
    assert!(n_objects > 0);

    let n_groups = group_sizes.len();
    let attr_name = |g: usize, i: usize| format!("g{g}a{i}");
    let mut b = DatasetBuilder::new();
    for o in 0..n_objects {
        let obj = format!("o{o}");
        let mut attr_index = 0i64;
        for (g, &size) in group_sizes.iter().enumerate() {
            for i in 0..size {
                let a = attr_name(g, i);
                let truth = Value::int(o as i64);
                b.truth(&obj, &a, truth.clone());
                for sg in 0..n_groups {
                    for variant in 0..2usize {
                        let src = format!("s{sg}_{variant}");
                        let value = if sg == g {
                            truth.clone()
                        } else {
                            // Unique per (source, attribute, object):
                            // wrong camps never form.
                            let src_index = (2 * sg + variant) as i64;
                            Value::int(
                                1_000_000 * (src_index + 1)
                                    + 1_000 * attr_index
                                    + o as i64
                                    + 100,
                            )
                        };
                        b.claim(&src, &obj, &a, value).expect("no conflicts by construction");
                    }
                }
                attr_index += 1;
            }
        }
    }
    let (dataset, truth) = b.build_with_truth();

    let groups = group_sizes
        .iter()
        .enumerate()
        .map(|(g, &size)| {
            (0..size)
                .map(|i| {
                    dataset
                        .attribute_id(&attr_name(g, i))
                        .expect("attribute was registered")
                })
                .collect()
        })
        .collect();
    SmallWorld {
        dataset,
        truth,
        planted: AttributePartition::new(groups),
    }
}

/// The default (fast) differential corpus: group shapes with
/// `|A| ∈ {3, 4, 5, 6}` — up to Bell(6) = 203 partitions per oracle run.
pub fn standard_worlds() -> Vec<SmallWorld> {
    vec![
        separable_world(&[2, 1], 4),
        separable_world(&[2, 2], 5),
        separable_world(&[3, 2], 5),
        separable_world(&[2, 2, 2], 6),
    ]
}

/// The expensive corpus gated behind the `expensive-oracles` feature:
/// `|A| ∈ {7, 8}` — Bell(7) = 877 and Bell(8) = 4140 partitions, i.e.
/// thousands of base-algorithm sweeps per case.
pub fn expensive_worlds() -> Vec<SmallWorld> {
    vec![separable_world(&[4, 3], 4), separable_world(&[4, 4], 4)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::{MajorityVote, TruthDiscovery};

    #[test]
    fn world_shape_matches_request() {
        let w = separable_world(&[2, 3], 4);
        assert_eq!(w.dataset.n_attributes(), 5);
        assert_eq!(w.dataset.n_objects(), 4);
        assert_eq!(w.dataset.n_sources(), 4);
        assert_eq!(w.dataset.n_cells(), 20);
        assert_eq!(w.truth.len(), 20);
        assert_eq!(w.planted.len(), 2);
        assert_eq!(w.planted.n_attributes(), 5);
    }

    #[test]
    fn plurality_is_exactly_right_everywhere() {
        // The load-bearing construction property: two votes for the
        // truth, singleton wrong votes.
        let w = separable_world(&[2, 2, 1], 3);
        let r = MajorityVote.discover(&w.dataset.view_all());
        for (o, a, v) in w.truth.iter() {
            assert_eq!(r.prediction(o, a), Some(v), "cell ({o}, {a})");
        }
    }

    #[test]
    fn corpora_have_the_advertised_sizes() {
        let standard: Vec<usize> =
            standard_worlds().iter().map(|w| w.dataset.n_attributes()).collect();
        assert_eq!(standard, vec![3, 4, 5, 6]);
        let expensive: Vec<usize> =
            expensive_worlds().iter().map(|w| w.dataset.n_attributes()).collect();
        assert_eq!(expensive, vec![7, 8]);
    }
}
