//! Differential checks: TD-AC against its brute-force oracle, against
//! itself at different thread counts, and against direct (uncached)
//! silhouette recomputation.
//!
//! Each check is a plain function that panics with a located diff on
//! violation, so the same helpers serve unit tests, the integration
//! suites, and `scripts/verify.sh`.

use clustering::{pairwise_distances, silhouette_paper_dist, KMeans, KMeansConfig};
use td_algorithms::{MajorityVote, TruthDiscovery};
use td_metrics::evaluate_fn;
use td_model::{Dataset, GroundTruth};
use tdac_core::{
    accugen::run_partition, truth_vector_matrix, AccuGenPartition, Observer, Parallelism, Tdac,
    TdacConfig,
    TdacOutcome, Weighting,
};

use crate::fingerprint::{OutcomeFingerprint, ResultFingerprint};
use crate::worlds::SmallWorld;

/// MajorityVote is per-cell: a cell's claims are identical in every
/// attribute sub-view containing it, so its predictions (and their
/// confidences) cannot depend on how the attributes are partitioned.
/// This makes plain voting a *universal* exact differential target —
/// TD-AC(MV), the global MV run, and AccuGen(MV) must agree on every
/// prediction of **any** dataset, no structure required.
///
/// Source trust and iteration counters are legitimately view-dependent
/// and are excluded from the comparison.
pub fn check_majority_partition_invariance(dataset: &Dataset) {
    let global = MajorityVote.discover(&dataset.view_all());
    let tdac = Tdac::new(TdacConfig::default())
        .run(&MajorityVote, dataset)
        .expect("non-empty dataset");
    assert_same_predictions(&global, &tdac.result, "TD-AC(MV) vs global MV");
}

/// The AccuGen half of [`check_majority_partition_invariance`]: every
/// partition the exhaustive search evaluates merges to the same MV
/// predictions, so the winner must too. Costs Bell(|A|) MV runs — keep
/// the input small.
pub fn check_accugen_majority_invariance(dataset: &Dataset) {
    let global = MajorityVote.discover(&dataset.view_all());
    let accugen = AccuGenPartition::default()
        .run(&MajorityVote, dataset, Weighting::Avg)
        .expect("non-empty dataset");
    assert_same_predictions(&global, &accugen.result, "AccuGen(MV) vs global MV");
}

/// TD-AC's merged result must be byte-for-byte what re-running the base
/// algorithm over the chosen partition produces: the pipeline's
/// parallel per-group fan-out and `merge_all` may not leak any state
/// between groups. Holds for any base algorithm on any dataset.
///
/// Returns the outcome so callers can chain further checks.
pub fn check_tdac_consistency(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
) -> TdacOutcome {
    let outcome = Tdac::new(TdacConfig::default())
        .run(base, dataset)
        .expect("non-empty dataset");
    let replay = run_partition(base, dataset, &outcome.partition, &Observer::disabled());
    let mut got = ResultFingerprint::of(&outcome.result);
    let expect = ResultFingerprint::of(&replay);
    // TD-AC reports one logical pass; the raw replay keeps the base
    // algorithm's iteration count. Everything else must be identical.
    got.iterations = expect.iterations;
    if let Some(diff) = got.diff(&expect) {
        panic!(
            "TD-AC result diverges from replaying its own partition {}: {diff}",
            outcome.partition
        );
    }
    outcome
}

/// The exhaustive oracle maximizes accuracy over *all* partitions, so
/// its score is an upper bound on the accuracy of TD-AC's single chosen
/// partition. Exact (no tolerance): both sides score a merged
/// `run_partition` result with the same `evaluate_fn`, and TD-AC's
/// partition is in the oracle's search space.
///
/// Returns `(oracle_score, tdac_accuracy)`.
pub fn check_oracle_dominance(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    truth: &GroundTruth,
) -> (f64, f64) {
    let oracle = AccuGenPartition::default()
        .run_oracle(base, dataset, truth)
        .expect("non-empty dataset");
    let tdac = Tdac::new(TdacConfig::default())
        .run(base, dataset)
        .expect("non-empty dataset");
    let accuracy = evaluate_fn(dataset, truth, |o, a| tdac.result.prediction(o, a)).accuracy;
    assert!(
        oracle.score >= accuracy,
        "oracle over all {} partitions scored {} but TD-AC's single partition {} scored {}",
        oracle.n_partitions,
        oracle.score,
        tdac.partition,
        accuracy
    );
    (oracle.score, accuracy)
}

/// On a separable [`SmallWorld`] the plurality of every cell is the
/// truth, so a perfect partition exists and both searchers must find
/// one: the exhaustive oracle reaches accuracy 1.0 and TD-AC ties it
/// exactly — brute force and clustering agree on every prediction.
pub fn check_small_world_exact(base: &(dyn TruthDiscovery + Sync), world: &SmallWorld) {
    let SmallWorld { dataset, truth, .. } = world;

    let oracle = AccuGenPartition::default()
        .run_oracle(base, dataset, truth)
        .expect("world is non-empty");
    assert_eq!(
        oracle.score, 1.0,
        "the exhaustive oracle must find a perfect partition on a separable world \
         (best: {} at {})",
        oracle.score, oracle.partition
    );

    let tdac = Tdac::new(TdacConfig::default())
        .run(base, dataset)
        .expect("world is non-empty");
    let mut wrong = 0usize;
    for (o, a, v) in truth.iter() {
        if tdac.result.prediction(o, a) != Some(v) {
            wrong += 1;
        }
    }
    assert_eq!(
        wrong, 0,
        "TD-AC (partition {}) must tie the oracle on a separable world; {wrong} of {} cells differ",
        tdac.partition,
        truth.len()
    );

    // With both sides at accuracy 1.0, TD-AC == oracle value-wise.
    // Confidences are *not* compared here: an iterative base's
    // confidence depends on the view it ran in, and the two searchers
    // may legitimately settle on different perfect partitions.
    assert_same_values(
        &oracle.result,
        &tdac.result,
        "TD-AC vs exhaustive oracle on a separable world (values)",
    );
}

/// Runs TD-AC once per entry of `threads` (`0` meaning [`Parallelism::Auto`])
/// and asserts every observable field of the outcome — predictions,
/// confidences, trust, partition, silhouette, the whole k-sweep — is
/// bit-identical across them. Returns the common fingerprint.
pub fn check_thread_invariance(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    threads: &[usize],
) -> OutcomeFingerprint {
    let run = |parallelism| {
        Tdac::new(TdacConfig {
            backend: tdac_core::ExecutionBackend::in_process(parallelism),
            ..TdacConfig::default()
        })
        .run(base, dataset)
        .expect("non-empty dataset")
    };
    let reference = OutcomeFingerprint::of(&run(Parallelism::Threads(1)));
    for &n in threads {
        let parallelism = if n == 0 {
            Parallelism::Auto
        } else {
            Parallelism::Threads(n)
        };
        let got = OutcomeFingerprint::of(&run(parallelism));
        if got != reference {
            let diff = got
                .result
                .diff(&reference.result)
                .unwrap_or_else(|| {
                    format!(
                        "partition/sweep metadata: ({}, sil {:e}, {} k-scores, fallback {}) vs \
                         ({}, sil {:e}, {} k-scores, fallback {})",
                        got.partition,
                        f64::from_bits(got.silhouette),
                        got.k_scores.len(),
                        got.fallback,
                        reference.partition,
                        f64::from_bits(reference.silhouette),
                        reference.k_scores.len(),
                        reference.fallback,
                    )
                });
            panic!("{parallelism:?} diverges from Threads(1): {diff}");
        }
    }
    reference
}

/// Observation is read-only: attaching an enabled [`tdac_core::Observer`]
/// to the config may never change a single bit of the outcome, at any
/// thread count. Runs TD-AC observer-off and observer-on at `Threads(1)`
/// plus every entry of `threads` (`0` meaning [`Parallelism::Auto`]) and
/// asserts all fingerprints equal the observer-off `Threads(1)`
/// reference. Also asserts the enabled runs actually produced a profile
/// (so neutrality isn't vacuous) and the disabled runs did not.
pub fn check_observer_neutrality(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    threads: &[usize],
) -> OutcomeFingerprint {
    let run = |parallelism, observer: tdac_core::Observer| {
        Tdac::new(TdacConfig {
            backend: tdac_core::ExecutionBackend::in_process(parallelism),
            observer,
            ..TdacConfig::default()
        })
        .run(base, dataset)
        .expect("non-empty dataset")
    };
    let baseline = run(Parallelism::Threads(1), tdac_core::Observer::disabled());
    assert!(baseline.profile.is_none(), "disabled observer produced a profile");
    let reference = OutcomeFingerprint::of(&baseline);
    let mut cases = vec![Parallelism::Threads(1)];
    cases.extend(threads.iter().map(|&n| {
        if n == 0 {
            Parallelism::Auto
        } else {
            Parallelism::Threads(n)
        }
    }));
    for &parallelism in &cases {
        let observed = run(parallelism, tdac_core::Observer::enabled());
        let profile = observed
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("enabled observer at {parallelism:?} produced no profile"));
        assert!(
            profile.counter("distance_evals").unwrap_or(0) > 0
                || profile.counter("fixpoint_iterations").unwrap_or(0) > 0,
            "profile at {parallelism:?} recorded no work — observation was a no-op"
        );
        let got = OutcomeFingerprint::of(&observed);
        assert_eq!(
            got, reference,
            "observer-enabled run at {parallelism:?} diverges from the observer-off Threads(1) reference"
        );
        // Off must equal off too (guards against the observer field
        // perturbing unrelated config state).
        let off = OutcomeFingerprint::of(&run(parallelism, tdac_core::Observer::disabled()));
        assert_eq!(
            off, reference,
            "observer-off run at {parallelism:?} diverges from Threads(1)"
        );
    }
    reference
}

/// AccuGen's streamed partition scan must pick the same winner with the
/// same score and result at every thread count (the `(score, index)`
/// total-order reduction).
pub fn check_accugen_thread_invariance(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    truth: &GroundTruth,
    threads: &[usize],
) {
    let run = |parallelism| {
        AccuGenPartition {
            parallelism,
            ..AccuGenPartition::default()
        }
        .run_oracle(base, dataset, truth)
        .expect("non-empty dataset")
    };
    let reference = OutcomeFingerprint::of_accugen(&run(Parallelism::Threads(1)));
    for &n in threads {
        let parallelism = if n == 0 {
            Parallelism::Auto
        } else {
            Parallelism::Threads(n)
        };
        let got = OutcomeFingerprint::of_accugen(&run(parallelism));
        assert_eq!(
            got, reference,
            "AccuGen oracle at {parallelism:?} diverges from Threads(1)"
        );
    }
}

/// Every silhouette in TD-AC's k-sweep comes from the shared distance
/// matrix; recomputing each k directly — fresh k-means fit, fresh
/// pairwise distances — must reproduce the cached scores bit-for-bit.
pub fn check_cached_sweep(base: &(dyn TruthDiscovery + Sync), dataset: &Dataset) {
    let config = TdacConfig::default();
    let outcome = Tdac::new(config.clone())
        .run(base, dataset)
        .expect("non-empty dataset");
    assert!(
        !outcome.k_scores.is_empty(),
        "dataset too small for a k-sweep; use ≥ 3 attributes"
    );
    let (matrix, _) = truth_vector_matrix(base, &dataset.view_all(), &Observer::disabled());
    let n = dataset.n_attributes();
    for &(k, cached) in &outcome.k_scores {
        let assignments = KMeans::new(KMeansConfig {
            k,
            n_init: config.n_init,
            seed: config.seed,
            ..KMeansConfig::with_k(k)
        })
        .fit(&matrix)
        .expect("sweep k is feasible")
        .assignments;
        let dist =
            pairwise_distances(&matrix, config.metric.as_metric(), &Observer::disabled());
        let direct = silhouette_paper_dist(&dist, n, &assignments);
        assert_eq!(
            cached.to_bits(),
            direct.to_bits(),
            "k = {k}: cached silhouette {cached:e} != direct recomputation {direct:e}"
        );
    }
}

/// Asserts two results select the same value with the same confidence
/// bits for every cell (trust and iterations excluded).
fn assert_same_predictions(a: &td_algorithms::TruthResult, b: &td_algorithms::TruthResult, context: &str) {
    let (mut fa, mut fb) = (ResultFingerprint::of(a), ResultFingerprint::of(b));
    fa.source_trust.clear();
    fb.source_trust.clear();
    fa.iterations = 0;
    fb.iterations = 0;
    if let Some(diff) = fa.diff(&fb) {
        panic!("{context}: predictions differ — {diff}");
    }
}

/// Asserts two results select the same value for every cell, ignoring
/// confidences (which are view-dependent for iterative bases).
fn assert_same_values(a: &td_algorithms::TruthResult, b: &td_algorithms::TruthResult, context: &str) {
    let rows = |r: &td_algorithms::TruthResult| {
        let mut v: Vec<_> = r.iter().map(|(o, at, val, _)| (o, at, val)).collect();
        v.sort_unstable();
        v
    };
    let (ra, rb) = (rows(a), rows(b));
    if ra != rb {
        let first = ra
            .iter()
            .zip(&rb)
            .find(|(x, y)| x != y)
            .map(|(x, y)| format!("{x:?} vs {y:?}"))
            .unwrap_or_else(|| format!("{} vs {} cells", ra.len(), rb.len()));
        panic!("{context}: selected values differ — {first}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::separable_world;
    use td_algorithms::Accu;

    #[test]
    fn all_checks_pass_on_a_tiny_world() {
        let w = separable_world(&[2, 1], 3);
        check_majority_partition_invariance(&w.dataset);
        check_accugen_majority_invariance(&w.dataset);
        check_tdac_consistency(&MajorityVote, &w.dataset);
        check_oracle_dominance(&MajorityVote, &w.dataset, &w.truth);
        check_small_world_exact(&MajorityVote, &w);
        check_cached_sweep(&MajorityVote, &w.dataset);
        check_thread_invariance(&MajorityVote, &w.dataset, &[2]);
    }

    #[test]
    fn consistency_holds_for_an_iterative_base() {
        let w = separable_world(&[2, 2], 3);
        let outcome = check_tdac_consistency(&Accu::default(), &w.dataset);
        assert_eq!(outcome.result.len(), w.dataset.n_cells());
    }
}
