//! Paper-conformance goldens: committed snapshots of the DS1 preset
//! tables (precision / recall / F1 / accuracy per algorithm, plain and
//! under TD-AC, plus dataset DCR and the selected partitions).
//!
//! The snapshot pins every number bit-exactly — `serde_json` prints
//! shortest round-trip floats, so parse-compare is lossless. Any change
//! to an algorithm, the generator, the clustering stack, or the merge
//! path that moves a result silently now fails tier-1 with a field-level
//! diff instead of slipping through.
//!
//! Regeneration ("blessing") is deliberate and two-step: run
//! `cargo run -p td-verify -- --bless` (or any golden-checking test with
//! `TDAC_BLESS=1`), then review the diff of `goldens/ds1.json` like any
//! other code change.

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use td_algorithms::{standard_algorithms, TruthDiscovery};
use td_metrics::{evaluate_fn, EvalReport};
use td_model::stats::data_coverage_rate;
use datagen::{generate_synthetic, SyntheticConfig};
use tdac_core::{Tdac, TdacConfig};

/// Objects in the scaled DS1 world the golden pins. Full DS1 has 1000;
/// 120 keeps the five algorithms × (plain + TD-AC) under a few seconds
/// while preserving the structural story (6 attributes, 10 sources,
/// planted partition `[[0,1],[3,5],[2],[4]]`).
pub const DS1_GOLDEN_OBJECTS: usize = 120;

/// The environment variable that switches golden checks into
/// regeneration mode.
pub const BLESS_ENV: &str = "TDAC_BLESS";

/// The metrics a table row pins (a bit-exact subset of [`EvalReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenReport {
    /// Instance-level precision.
    pub precision: f64,
    /// Instance-level recall.
    pub recall: f64,
    /// F1-measure.
    pub f1: f64,
    /// Instance-level accuracy.
    pub accuracy: f64,
    /// Cell-level accuracy.
    pub cell_accuracy: f64,
}

impl From<&EvalReport> for GoldenReport {
    fn from(r: &EvalReport) -> Self {
        Self {
            precision: r.precision,
            recall: r.recall,
            f1: r.f1,
            accuracy: r.accuracy,
            cell_accuracy: r.cell_accuracy,
        }
    }
}

/// One algorithm's row: the plain (un-partitioned) run and the TD-AC
/// run, with TD-AC's model selection pinned alongside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmGolden {
    /// Paper-style algorithm name.
    pub algorithm: String,
    /// Metrics of the global, un-partitioned run.
    pub plain: GoldenReport,
    /// Metrics of the TD-AC run with this base algorithm.
    pub tdac: GoldenReport,
    /// The partition TD-AC selected (canonical rendering).
    pub tdac_partition: String,
    /// Its silhouette score.
    pub tdac_silhouette: f64,
    /// Whether TD-AC fell back to the un-partitioned run.
    pub tdac_fallback: bool,
}

/// The full DS1 snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ds1Golden {
    /// Objects in the scaled world ([`DS1_GOLDEN_OBJECTS`]).
    pub n_objects: usize,
    /// Data coverage rate of the generated dataset (paper Table 3).
    pub dcr: f64,
    /// The generator's planted partition (canonical rendering).
    pub planted: String,
    /// One row per standard algorithm, in the paper's order.
    pub algorithms: Vec<AlgorithmGolden>,
}

/// Where the committed snapshot lives (inside this crate, so the path
/// is stable no matter which package's tests run the check).
pub fn golden_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/goldens/ds1.json"))
}

/// Recomputes the DS1 table from scratch with the default TD-AC config.
pub fn compute_ds1() -> Ds1Golden {
    compute_ds1_with(&TdacConfig::default())
}

/// Recomputes the DS1 table with a caller-supplied TD-AC config. The
/// committed golden uses [`TdacConfig::default`]; the observer-neutrality
/// harness passes an observer-enabled config and asserts the table is
/// bit-identical either way.
pub fn compute_ds1_with(tdac_config: &TdacConfig) -> Ds1Golden {
    let config = SyntheticConfig::ds1().scaled(DS1_GOLDEN_OBJECTS);
    let world = generate_synthetic(&config);
    let planted = tdac_core::AttributePartition::new(world.planted.groups.clone());

    let algorithms = standard_algorithms()
        .iter()
        .map(|base| {
            let plain = base.discover(&world.dataset.view_all());
            let plain_report =
                evaluate_fn(&world.dataset, &world.truth, |o, a| plain.prediction(o, a));
            let outcome = Tdac::new(tdac_config.clone())
                .run(base.as_ref(), &world.dataset)
                .expect("DS1 is non-empty");
            let tdac_report = evaluate_fn(&world.dataset, &world.truth, |o, a| {
                outcome.result.prediction(o, a)
            });
            AlgorithmGolden {
                algorithm: base.name().to_string(),
                plain: GoldenReport::from(&plain_report),
                tdac: GoldenReport::from(&tdac_report),
                tdac_partition: outcome.partition.to_string(),
                tdac_silhouette: outcome.silhouette,
                tdac_fallback: outcome.fallback,
            }
        })
        .collect();

    Ds1Golden {
        n_objects: DS1_GOLDEN_OBJECTS,
        dcr: data_coverage_rate(&world.dataset),
        planted: planted.to_string(),
        algorithms,
    }
}

/// Writes the freshly computed snapshot to [`golden_path`], returning
/// the path.
pub fn bless_ds1() -> std::io::Result<PathBuf> {
    let path = golden_path();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let json =
        serde_json::to_string_pretty(&compute_ds1()).expect("golden serializes infallibly");
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Checks the committed snapshot against a fresh computation. With
/// `TDAC_BLESS=1` in the environment the snapshot is rewritten instead
/// and the check passes.
///
/// Returns a field-level description of the first divergence on
/// failure.
pub fn check_ds1() -> Result<(), String> {
    if std::env::var(BLESS_ENV).is_ok_and(|v| v == "1") {
        let path = bless_ds1().map_err(|e| format!("blessing failed: {e}"))?;
        eprintln!("blessed {}", path.display());
        return Ok(());
    }
    let path = golden_path();
    let committed = fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read golden {}: {e}\nrun `cargo run -p td-verify -- --bless` to create it",
            path.display()
        )
    })?;
    let committed: Ds1Golden = serde_json::from_str(&committed)
        .map_err(|e| format!("golden {} is not valid JSON: {e:?}", path.display()))?;
    let fresh = compute_ds1();
    match diff_ds1(&committed, &fresh) {
        None => Ok(()),
        Some(diff) => Err(format!(
            "DS1 results diverged from the committed golden:\n  {diff}\n\
             If the change is intentional, regenerate with \
             `cargo run -p td-verify -- --bless` (or TDAC_BLESS=1) and commit the diff.",
        )),
    }
}

/// First field-level difference between two snapshots, or `None`.
pub fn diff_ds1(committed: &Ds1Golden, fresh: &Ds1Golden) -> Option<String> {
    if committed == fresh {
        return None;
    }
    if committed.n_objects != fresh.n_objects {
        return Some(format!(
            "n_objects: {} vs {}",
            committed.n_objects, fresh.n_objects
        ));
    }
    if committed.dcr.to_bits() != fresh.dcr.to_bits() {
        return Some(format!("dcr: {:e} vs {:e}", committed.dcr, fresh.dcr));
    }
    if committed.planted != fresh.planted {
        return Some(format!(
            "planted partition: {} vs {}",
            committed.planted, fresh.planted
        ));
    }
    if committed.algorithms.len() != fresh.algorithms.len() {
        return Some(format!(
            "algorithm counts: {} vs {}",
            committed.algorithms.len(),
            fresh.algorithms.len()
        ));
    }
    for (c, f) in committed.algorithms.iter().zip(&fresh.algorithms) {
        if c != f {
            let field = |name: &str, a: f64, b: f64| format!("{}.{name}: {a:e} vs {b:e}", c.algorithm);
            if c.algorithm != f.algorithm {
                return Some(format!("algorithm order: {} vs {}", c.algorithm, f.algorithm));
            }
            for (name, a, b) in [
                ("plain.precision", c.plain.precision, f.plain.precision),
                ("plain.recall", c.plain.recall, f.plain.recall),
                ("plain.f1", c.plain.f1, f.plain.f1),
                ("plain.accuracy", c.plain.accuracy, f.plain.accuracy),
                ("plain.cell_accuracy", c.plain.cell_accuracy, f.plain.cell_accuracy),
                ("tdac.precision", c.tdac.precision, f.tdac.precision),
                ("tdac.recall", c.tdac.recall, f.tdac.recall),
                ("tdac.f1", c.tdac.f1, f.tdac.f1),
                ("tdac.accuracy", c.tdac.accuracy, f.tdac.accuracy),
                ("tdac.cell_accuracy", c.tdac.cell_accuracy, f.tdac.cell_accuracy),
                ("tdac_silhouette", c.tdac_silhouette, f.tdac_silhouette),
            ] {
                if a.to_bits() != b.to_bits() {
                    return Some(field(name, a, b));
                }
            }
            if c.tdac_partition != f.tdac_partition {
                return Some(format!(
                    "{}.tdac_partition: {} vs {}",
                    c.algorithm, c.tdac_partition, f.tdac_partition
                ));
            }
            if c.tdac_fallback != f.tdac_fallback {
                return Some(format!(
                    "{}.tdac_fallback: {} vs {}",
                    c.algorithm, c.tdac_fallback, f.tdac_fallback
                ));
            }
        }
    }
    Some("snapshots differ (unlocated field)".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_deterministic() {
        // The golden is only meaningful if recomputation is exact.
        let a = compute_ds1();
        let b = compute_ds1();
        assert_eq!(a, b);
        assert!(diff_ds1(&a, &b).is_none());
    }

    #[test]
    fn snapshot_round_trips_through_json_losslessly() {
        let golden = compute_ds1();
        let json = serde_json::to_string_pretty(&golden).unwrap();
        let back: Ds1Golden = serde_json::from_str(&json).unwrap();
        assert_eq!(golden, back, "shortest-float printing must round-trip");
        assert!(diff_ds1(&golden, &back).is_none());
    }

    #[test]
    fn diff_locates_a_perturbed_field() {
        let golden = compute_ds1();
        let mut tweaked = golden.clone();
        tweaked.algorithms[2].tdac.f1 += 1e-9;
        let diff = diff_ds1(&golden, &tweaked).expect("must detect the tweak");
        assert!(diff.contains("DEPEN.tdac.f1"), "{diff}");
        let mut flipped = golden.clone();
        flipped.algorithms[0].tdac_fallback = !flipped.algorithms[0].tdac_fallback;
        let diff = diff_ds1(&golden, &flipped).expect("must detect the flip");
        assert!(diff.contains("tdac_fallback"), "{diff}");
    }

    #[test]
    fn golden_rows_cover_the_standard_five() {
        let golden = compute_ds1();
        let names: Vec<&str> = golden.algorithms.iter().map(|a| a.algorithm.as_str()).collect();
        assert_eq!(
            names,
            vec!["MajorityVote", "TruthFinder", "DEPEN", "Accu", "AccuSim"]
        );
        assert!(golden.dcr > 0.0 && golden.dcr <= 100.0);
    }
}
