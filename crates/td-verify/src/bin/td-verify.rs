//! Golden snapshot driver.
//!
//! * `td-verify` — recompute the DS1 table and the DS1 binary store and
//!   check both against the committed snapshots (exit 1 on divergence).
//! * `td-verify --bless` — regenerate both snapshots in place; review
//!   and commit the diff.
//! * `td-verify worker` — run as a td-shard worker process (reads one
//!   shard-job line on stdin). Exists so the shard oracle tests can
//!   spawn real worker processes out of the test binary's own
//!   workspace without depending on `tdc` being built.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["worker"] => ExitCode::from(td_shard::worker_main().clamp(0, 255) as u8),
        [] => {
            let mut ok = true;
            match td_verify::check_ds1() {
                Ok(()) => println!(
                    "golden check passed: {}",
                    td_verify::golden::golden_path().display()
                ),
                Err(diff) => {
                    eprintln!("{diff}");
                    ok = false;
                }
            }
            match td_verify::check_ds1_store() {
                Ok(()) => println!(
                    "store golden check passed: {}",
                    td_verify::store::store_golden_path().display()
                ),
                Err(diff) => {
                    eprintln!("{diff}");
                    ok = false;
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        ["--bless"] => match td_verify::bless_ds1().and_then(|p| {
            println!("blessed {}", p.display());
            td_verify::bless_ds1_store()
        }) {
            Ok(path) => {
                println!("blessed {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("blessing failed: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("usage: td-verify [--bless]   (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
