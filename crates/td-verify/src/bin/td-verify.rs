//! Golden snapshot driver.
//!
//! * `td-verify` — recompute the DS1 table and check it against the
//!   committed snapshot (exit 1 on divergence).
//! * `td-verify --bless` — regenerate the snapshot in place; review and
//!   commit the diff.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        [] => match td_verify::check_ds1() {
            Ok(()) => {
                println!("golden check passed: {}", td_verify::golden::golden_path().display());
                ExitCode::SUCCESS
            }
            Err(diff) => {
                eprintln!("{diff}");
                ExitCode::FAILURE
            }
        },
        ["--bless"] => match td_verify::bless_ds1() {
            Ok(path) => {
                println!("blessed {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("blessing failed: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("usage: td-verify [--bless]   (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
