//! Binary-store conformance golden: a committed `.tds` snapshot of the
//! scaled DS1 world with one truth page per standard algorithm.
//!
//! The golden pins two independent contracts at once:
//!
//! * **byte stability** — re-packing the deterministic DS1 world must
//!   reproduce the committed file byte-for-byte (interner order, claim
//!   sort, prediction sort, page layout, checksums); and
//! * **semantic fidelity** — running TD-AC *from the committed file*
//!   (build phase skipped via the stored truth pages) must produce an
//!   [`OutcomeFingerprint`] bit-identical to the from-scratch run on
//!   the freshly generated world, for every standard algorithm.
//!
//! Blessing rides the existing flow: `cargo run -p td-verify -- --bless`
//! (or `TDAC_BLESS=1`) regenerates `goldens/ds1.tds` alongside
//! `goldens/ds1.json`; review the diff like any code change.

use std::fs;
use std::path::PathBuf;

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::standard_algorithms;
use tdac_core::{DatasetStore, Tdac, TdacConfig};

use crate::fingerprint::OutcomeFingerprint;
use crate::golden::{BLESS_ENV, DS1_GOLDEN_OBJECTS};

/// Where the committed `.tds` snapshot lives (next to `ds1.json`).
pub fn store_golden_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/goldens/ds1.tds"))
}

/// Packs the scaled DS1 world into a store carrying one dense truth
/// page per standard algorithm — any of the five can later skip its
/// build phase from this one file.
pub fn compute_ds1_store() -> DatasetStore {
    let config = SyntheticConfig::ds1().scaled(DS1_GOLDEN_OBJECTS);
    let world = generate_synthetic(&config);
    let tdac = Tdac::new(TdacConfig::default());
    let mut store = DatasetStore::new(world.dataset.clone());
    for base in standard_algorithms() {
        for page in tdac.pack(base.as_ref(), &world.dataset).pages {
            store.push_page(page);
        }
    }
    store
}

/// Writes the freshly packed snapshot to [`store_golden_path`],
/// returning the path.
pub fn bless_ds1_store() -> std::io::Result<PathBuf> {
    let path = store_golden_path();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(&path, compute_ds1_store().to_bytes())?;
    Ok(path)
}

/// Checks the committed `.tds` snapshot: byte equality against a fresh
/// pack, load round-trip byte stability, and fingerprint equality of
/// store-backed runs against from-scratch runs for every standard
/// algorithm. With `TDAC_BLESS=1` the snapshot is rewritten instead.
pub fn check_ds1_store() -> Result<(), String> {
    if std::env::var(BLESS_ENV).is_ok_and(|v| v == "1") {
        let path = bless_ds1_store().map_err(|e| format!("blessing failed: {e}"))?;
        eprintln!("blessed {}", path.display());
        return Ok(());
    }
    let path = store_golden_path();
    let committed = fs::read(&path).map_err(|e| {
        format!(
            "cannot read store golden {}: {e}\nrun `cargo run -p td-verify -- --bless` to create it",
            path.display()
        )
    })?;

    // Byte stability: the deterministic pack must reproduce the file.
    let fresh_bytes = compute_ds1_store().to_bytes();
    if committed != fresh_bytes {
        let first = committed
            .iter()
            .zip(&fresh_bytes)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| committed.len().min(fresh_bytes.len()));
        return Err(format!(
            "ds1.tds diverged from the committed golden: lengths {} vs {}, first differing \
             byte at offset {first}.\nIf the format or the pipeline changed intentionally, \
             regenerate with `cargo run -p td-verify -- --bless` and commit the diff.",
            committed.len(),
            fresh_bytes.len()
        ));
    }

    // Load round-trip: decoding and re-encoding the committed bytes must
    // be the identity (canonical layout has exactly one encoding).
    let store = DatasetStore::from_bytes(&committed)
        .map_err(|e| format!("committed ds1.tds does not decode: {e}"))?;
    if store.to_bytes() != committed {
        return Err("ds1.tds load->save is not byte-stable".to_string());
    }

    // Semantic fidelity: the store-backed run (build phase skipped via
    // the truth page) must fingerprint identically to the from-scratch
    // run for every standard algorithm.
    let world = generate_synthetic(&SyntheticConfig::ds1().scaled(DS1_GOLDEN_OBJECTS));
    let tdac = Tdac::new(TdacConfig::default());
    for base in standard_algorithms() {
        let from_store = tdac
            .run_store(base.as_ref(), &store)
            .map_err(|e| format!("{}: store-backed run failed: {e}", base.name()))?;
        let from_scratch = tdac
            .run(base.as_ref(), &world.dataset)
            .map_err(|e| format!("{}: from-scratch run failed: {e}", base.name()))?;
        let a = OutcomeFingerprint::of(&from_store);
        let b = OutcomeFingerprint::of(&from_scratch);
        if let Some(diff) = a.diff(&b) {
            return Err(format!(
                "{}: store-backed outcome diverged from the from-scratch run:\n  {diff}",
                base.name()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_byte_deterministic() {
        assert_eq!(compute_ds1_store().to_bytes(), compute_ds1_store().to_bytes());
    }

    #[test]
    fn store_carries_one_page_per_standard_algorithm() {
        let store = compute_ds1_store();
        assert_eq!(store.pages.len(), standard_algorithms().len());
        for base in standard_algorithms() {
            assert!(
                store.page(base.name(), false).is_some(),
                "missing page for {}",
                base.name()
            );
        }
    }
}
