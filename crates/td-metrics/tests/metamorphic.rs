//! Metamorphic properties of the evaluation layer: relations between
//! reports that must hold for *any* dataset, truth, and prediction set.

use std::collections::HashMap;

use proptest::prelude::*;
use td_metrics::{evaluate_fn, evaluate_per_attribute, EvalReport, Predictions};
use td_model::{AttributeId, Dataset, DatasetBuilder, GroundTruth, ObjectId, Value, ValueId};

const N_SOURCES: u32 = 3;
const N_OBJECTS: u32 = 4;
const N_ATTRS: u32 = 4;
const N_VALUES: u32 = 5;

/// A raw claim quadruple `(source, object, attribute, value)`.
type Quad = (u32, u32, u32, u32);

/// A random world: claims, a truth value per cell slot, and a predicted
/// value per cell slot (slots without claims are simply never evaluated).
fn world() -> impl Strategy<Value = (Vec<Quad>, Vec<u32>, Vec<u32>)> {
    let slots = (N_OBJECTS * N_ATTRS) as usize;
    (
        proptest::collection::vec(
            (0u32..N_SOURCES, 0u32..N_OBJECTS, 0u32..N_ATTRS, 0u32..N_VALUES),
            1..40,
        ),
        proptest::collection::vec(0u32..N_VALUES, slots..=slots),
        proptest::collection::vec(0u32..N_VALUES + 1, slots..=slots),
    )
}

/// Builds the dataset plus truth and predictions maps. A predicted slot
/// equal to `N_VALUES` encodes abstention (no prediction for the cell).
fn build(
    claims: &[Quad],
    truths: &[u32],
    preds: &[u32],
) -> (Dataset, GroundTruth, Predictions) {
    let mut b = DatasetBuilder::new();
    let mut values: Vec<ValueId> = Vec::new();
    for v in 0..N_VALUES {
        values.push(b.value(Value::int(v as i64)));
    }
    let mut seen = std::collections::HashSet::new();
    for &(s, o, a, v) in claims {
        if seen.insert((s, o, a)) {
            b.claim(
                &format!("s{s}"),
                &format!("o{o}"),
                &format!("a{a}"),
                Value::int(v as i64),
            )
            .expect("first claim per cell slot");
        }
    }
    let dataset = b.build();
    let mut truth = GroundTruth::new();
    let mut predictions: Predictions = HashMap::new();
    for o in 0..N_OBJECTS {
        for a in 0..N_ATTRS {
            let (Some(oid), Some(aid)) = (
                dataset.object_id(&format!("o{o}")),
                dataset.attribute_id(&format!("a{a}")),
            ) else {
                continue;
            };
            let slot = (o * N_ATTRS + a) as usize;
            truth.set(oid, aid, values[truths[slot] as usize]);
            if preds[slot] < N_VALUES {
                predictions.insert((oid, aid), values[preds[slot] as usize]);
            }
        }
    }
    (dataset, truth, predictions)
}

fn lookup(p: &Predictions) -> impl Fn(ObjectId, AttributeId) -> Option<ValueId> + '_ {
    move |o, a| p.get(&(o, a)).copied()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting the evaluation per attribute and merging the partial
    /// reports must reproduce the global report exactly: same raw counts,
    /// and — since the ratios are derived from those counts by the same
    /// code path — bitwise-identical measures. This is the identity that
    /// lets TD-AC score per-group runs independently.
    #[test]
    fn per_attribute_merge_reproduces_the_global_report(
        (claims, truths, preds) in world(),
    ) {
        let (dataset, truth, predictions) = build(&claims, &truths, &preds);
        let global = evaluate_fn(&dataset, &truth, lookup(&predictions));
        let parts = evaluate_per_attribute(&dataset, &truth, lookup(&predictions));
        let part_reports: Vec<EvalReport> = parts.iter().map(|(_, r)| *r).collect();
        let merged = EvalReport::merged(&part_reports);
        prop_assert_eq!(merged.confusion, global.confusion);
        prop_assert_eq!(merged.n_cells, global.n_cells);
        prop_assert_eq!(merged.n_correct, global.n_correct);
        prop_assert_eq!(merged.precision.to_bits(), global.precision.to_bits());
        prop_assert_eq!(merged.recall.to_bits(), global.recall.to_bits());
        prop_assert_eq!(merged.accuracy.to_bits(), global.accuracy.to_bits());
        prop_assert_eq!(merged.f1.to_bits(), global.f1.to_bits());
        prop_assert_eq!(merged.cell_accuracy.to_bits(), global.cell_accuracy.to_bits());
    }

    /// Correcting one wrong (or abstained) cell to its ground truth is a
    /// pure improvement: exactly one more exact cell, one more true
    /// positive, and recall / cell accuracy that never decrease.
    #[test]
    fn correcting_one_cell_strictly_improves(
        (claims, truths, preds) in world(),
    ) {
        let (dataset, truth, mut predictions) = build(&claims, &truths, &preds);
        // Find an evaluated cell whose prediction misses the truth.
        let wrong = dataset.view_all().cells().find_map(|cell| {
            let t = truth.get(cell.object, cell.attribute)?;
            match predictions.get(&(cell.object, cell.attribute)) {
                Some(&p) if p == t => None,
                _ => Some((cell.object, cell.attribute, t)),
            }
        });
        // All-correct draws satisfy the property vacuously.
        if let Some((o, a, t)) = wrong {
            let before = evaluate_fn(&dataset, &truth, lookup(&predictions));
            predictions.insert((o, a), t);
            let after = evaluate_fn(&dataset, &truth, lookup(&predictions));
            prop_assert_eq!(after.n_cells, before.n_cells);
            prop_assert_eq!(after.n_correct, before.n_correct + 1);
            prop_assert_eq!(after.confusion.tp, before.confusion.tp + 1);
            prop_assert!(after.recall >= before.recall,
                "recall regressed: {} -> {}", before.recall, after.recall);
            prop_assert!(after.cell_accuracy > before.cell_accuracy);
        }
    }

    /// Sanity envelope for any report: counts are consistent and every
    /// derived ratio stays inside [0, 1].
    #[test]
    fn reports_stay_inside_their_envelope((claims, truths, preds) in world()) {
        let (dataset, truth, predictions) = build(&claims, &truths, &preds);
        let r = evaluate_fn(&dataset, &truth, lookup(&predictions));
        prop_assert!(r.n_correct <= r.n_cells);
        prop_assert_eq!(r.confusion.tp as u64 >= r.n_correct, true,
            "every exact cell contributes a TP");
        for m in [r.precision, r.recall, r.accuracy, r.f1, r.cell_accuracy] {
            prop_assert!((0.0..=1.0).contains(&m), "measure {m} out of range");
        }
    }
}
