//! The evaluation report bundling all derived measures.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::confusion::Confusion;

/// All measures the paper's tables report for one algorithm on one
/// dataset (time and iteration count are attached by the harness, which
/// owns the clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Instance-level precision.
    pub precision: f64,
    /// Instance-level recall.
    pub recall: f64,
    /// Instance-level accuracy.
    pub accuracy: f64,
    /// F1-measure.
    pub f1: f64,
    /// Fraction of evaluated cells whose selected value equals the truth
    /// (cell-level accuracy; a complementary, coarser view).
    pub cell_accuracy: f64,
    /// Number of cells with known truth that were evaluated.
    pub n_cells: u64,
    /// Number of those cells answered exactly right.
    pub n_correct: u64,
    /// The raw counts behind the ratios.
    pub confusion: Confusion,
}

impl EvalReport {
    /// Builds a report from raw counts.
    pub fn from_confusion(confusion: Confusion, n_cells: u64, n_correct: u64) -> Self {
        Self {
            precision: confusion.precision(),
            recall: confusion.recall(),
            accuracy: confusion.accuracy(),
            f1: confusion.f1(),
            cell_accuracy: if n_cells == 0 {
                0.0
            } else {
                n_correct as f64 / n_cells as f64
            },
            n_cells,
            n_correct,
            confusion,
        }
    }

    /// Merges per-partition reports (e.g. the partial results of a TD-AC
    /// run) into one overall report by summing the underlying counts.
    pub fn merged(reports: &[EvalReport]) -> Self {
        let mut conf = Confusion::new();
        let mut n_cells = 0;
        let mut n_correct = 0;
        for r in reports {
            conf.merge(&r.confusion);
            n_cells += r.n_cells;
            n_correct += r.n_correct;
        }
        Self::from_confusion(conf, n_cells, n_correct)
    }
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision={:.3} recall={:.3} accuracy={:.3} f1={:.3} ({} / {} cells exact)",
            self.precision, self.recall, self.accuracy, self.f1, self.n_correct, self.n_cells
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_measures_match_confusion() {
        let conf = Confusion {
            tp: 3,
            fp: 1,
            fn_: 1,
            tn: 5,
        };
        let r = EvalReport::from_confusion(conf, 4, 3);
        assert_eq!(r.precision, conf.precision());
        assert_eq!(r.recall, conf.recall());
        assert_eq!(r.accuracy, conf.accuracy());
        assert_eq!(r.f1, conf.f1());
        assert!((r.cell_accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merged_equals_pooled_counts() {
        let a = EvalReport::from_confusion(
            Confusion {
                tp: 2,
                fp: 0,
                fn_: 1,
                tn: 3,
            },
            3,
            2,
        );
        let b = EvalReport::from_confusion(
            Confusion {
                tp: 1,
                fp: 2,
                fn_: 0,
                tn: 4,
            },
            3,
            1,
        );
        let m = EvalReport::merged(&[a, b]);
        assert_eq!(m.confusion.tp, 3);
        assert_eq!(m.confusion.fp, 2);
        assert_eq!(m.n_cells, 6);
        assert_eq!(m.n_correct, 3);
        // Pooled micro-precision, not the average of the two precisions.
        assert!((m.precision - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn merged_of_empty_is_zeroes() {
        let m = EvalReport::merged(&[]);
        assert_eq!(m.n_cells, 0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.cell_accuracy, 0.0);
    }

    #[test]
    fn display_is_humane() {
        let r = EvalReport::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            1,
            1,
        );
        let s = r.to_string();
        assert!(s.contains("precision=1.000"));
        assert!(s.contains("1 / 1 cells"));
    }
}
