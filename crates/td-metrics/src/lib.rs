#![warn(missing_docs)]

//! # td-metrics — evaluation metrics for truth discovery
//!
//! Implements the measures the TD-AC paper reports in every table:
//! *precision*, *recall*, *accuracy*, *F1-measure* (plus execution time,
//! handled by [`timing`]) and the *Data Coverage Rate* re-exported from
//! `td-model`.
//!
//! ## Counting semantics
//!
//! Metrics are computed at the granularity of **distinct claimed values**,
//! the convention of the truth-discovery literature (Waguih &
//! Berti-Equille 2014): for every `(object, attribute)` cell with known
//! ground truth, each distinct value claimed by some source is a binary
//! classification instance — the algorithm labels the single value it
//! selects as *true* and every other candidate as *false*:
//!
//! * **TP** — selected value is the ground truth;
//! * **FP** — selected value is not the ground truth;
//! * **FN** — the ground truth was claimed by someone but not selected;
//! * **TN** — an unselected candidate that is indeed not the truth.
//!
//! When the ground truth was claimed by *no* source the algorithm cannot
//! recall it: selecting anything yields an FP but no FN, which is exactly
//! why the paper's tables show recall ≥ precision on noisy datasets.

pub mod confusion;
pub mod evaluate;
pub mod report;
pub mod timing;

pub use confusion::Confusion;
pub use evaluate::{evaluate, evaluate_fn, evaluate_per_attribute, evaluate_view, Predictions};
pub use report::EvalReport;
pub use timing::Stopwatch;

pub use td_model::stats::data_coverage_rate;
