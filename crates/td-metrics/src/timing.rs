//! Wall-clock measurement helper used by the experiment harness.

use std::time::{Duration, Instant};

/// A simple monotonic stopwatch.
///
/// The harness, not the algorithms, owns the clock: algorithms stay pure
/// and deterministic, and the same run can be timed or not without
/// touching algorithm code.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64` (the unit of the paper's Time(s) columns).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Times a closure, returning its output and the elapsed duration.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let sw = Self::start();
        let out = f();
        (out, sw.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn time_returns_closure_output() {
        let (out, d) = Stopwatch::time(|| 21 * 2);
        assert_eq!(out, 42);
        assert!(d >= Duration::ZERO);
    }
}
