//! Binary confusion counts and the derived measures.

use serde::{Deserialize, Serialize};

/// Accumulated binary confusion counts over claimed-value instances.
///
/// See the crate docs for what constitutes an instance. All derived
/// measures return `0.0` on an empty denominator (the standard convention
/// for degenerate splits) so callers never see NaN.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives: selected values that are the ground truth.
    pub tp: u64,
    /// False positives: selected values that are not the ground truth.
    pub fp: u64,
    /// False negatives: claimed ground-truth values that were not selected.
    pub fn_: u64,
    /// True negatives: unselected values that are indeed not the truth.
    pub tn: u64,
}

impl Confusion {
    /// An all-zero confusion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of instances.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// `TP / (TP + FP)` — how often a selected value is true.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)` — how often a claimed truth is selected.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// `(TP + TN) / total` — overall labeling accuracy.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// `FP + FN` as a fraction of total — the complement of accuracy.
    pub fn error_rate(&self) -> f64 {
        ratio(self.fp + self.fn_, self.total())
    }

    /// Merges another confusion into this one (e.g. per-partition results
    /// of a TD-AC run, or per-attribute breakdowns).
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(tp: u64, fp: u64, fn_: u64, tn: u64) -> Confusion {
        Confusion { tp, fp, fn_, tn }
    }

    #[test]
    fn perfect_classifier() {
        let m = c(10, 0, 0, 30);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.error_rate(), 0.0);
    }

    #[test]
    fn empty_counts_yield_zero_not_nan() {
        let m = Confusion::new();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn hand_computed_example() {
        // 6 instances: 2 TP, 1 FP, 1 FN, 2 TN.
        let m = c(2, 1, 1, 2);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.error_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let m = c(1, 1, 3, 0); // p = 0.5, r = 0.25
        let expect = 2.0 * 0.5 * 0.25 / 0.75;
        assert!((m.f1() - expect).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = c(1, 2, 3, 4);
        a.merge(&c(10, 20, 30, 40));
        assert_eq!(a, c(11, 22, 33, 44));
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn accuracy_exceeds_precision_with_many_true_negatives() {
        // Mirrors the paper's tables: value-level TN inflate accuracy above
        // precision on cells with many distinct false candidates.
        let m = c(60, 40, 20, 300);
        assert!(m.accuracy() > m.precision());
        assert!(m.recall() > m.precision());
    }
}
