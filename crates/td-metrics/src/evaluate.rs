//! Scoring a prediction set against ground truth.

use std::collections::HashMap;

use td_model::{AttributeId, Dataset, DatasetView, GroundTruth, ObjectId, ValueId};

use crate::confusion::Confusion;
use crate::report::EvalReport;

/// A prediction set: the value an algorithm selected as true per cell.
pub type Predictions = HashMap<(ObjectId, AttributeId), ValueId>;

/// Evaluates `predictions` over every cell of `dataset` that has a known
/// ground truth.
///
/// See the crate docs for the instance-level counting semantics. Cells
/// without a known truth are skipped; cells the algorithm abstained on
/// (no prediction) contribute an FN when the truth was claimed.
pub fn evaluate(dataset: &Dataset, truth: &GroundTruth, predictions: &Predictions) -> EvalReport {
    evaluate_fn(dataset, truth, |o, a| predictions.get(&(o, a)).copied())
}

/// Like [`evaluate`] but with a prediction lookup closure, avoiding an
/// intermediate map when the caller already holds a richer result type.
pub fn evaluate_fn(
    dataset: &Dataset,
    truth: &GroundTruth,
    lookup: impl Fn(ObjectId, AttributeId) -> Option<ValueId>,
) -> EvalReport {
    evaluate_view(&dataset.view_all(), truth, lookup)
}

/// Evaluates over the cells of a [`DatasetView`] only — used to score a
/// single attribute cluster of a TD-AC run in isolation.
pub fn evaluate_view(
    view: &DatasetView<'_>,
    truth: &GroundTruth,
    lookup: impl Fn(ObjectId, AttributeId) -> Option<ValueId>,
) -> EvalReport {
    let mut conf = Confusion::new();
    let mut n_cells = 0u64;
    let mut n_correct = 0u64;
    // Reused scratch for per-cell distinct values; cells are small.
    let mut distinct: Vec<ValueId> = Vec::new();

    for cell in view.cells() {
        let Some(true_value) = truth.get(cell.object, cell.attribute) else {
            continue;
        };
        n_cells += 1;
        distinct.clear();
        for claim in view.cell_claims(cell) {
            if !distinct.contains(&claim.value) {
                distinct.push(claim.value);
            }
        }
        let predicted = lookup(cell.object, cell.attribute);
        if predicted == Some(true_value) {
            n_correct += 1;
        }
        let mut truth_seen = false;
        for &v in &distinct {
            let actual = v == true_value;
            truth_seen |= actual;
            match (predicted == Some(v), actual) {
                (true, true) => conf.tp += 1,
                (true, false) => conf.fp += 1,
                (false, true) => conf.fn_ += 1,
                (false, false) => conf.tn += 1,
            }
        }
        // A prediction outside the claimed candidates is still a
        // classification act: right if it names the (unclaimed) truth,
        // wrong otherwise.
        if let Some(p) = predicted {
            if !distinct.contains(&p) {
                if p == true_value {
                    conf.tp += 1;
                } else {
                    conf.fp += 1;
                    // The unclaimed-truth case adds no FN (see crate docs);
                    // but if the truth *was* claimed it was already counted.
                }
            }
        }
        let _ = truth_seen;
    }

    EvalReport::from_confusion(conf, n_cells, n_correct)
}

/// Per-attribute evaluation breakdown: one report per attribute with at
/// least one truth-bearing cell, keyed by attribute id.
///
/// This is the diagnostic view behind TD-AC's analysis: comparing the
/// per-attribute reports of a global run against a partitioned run shows
/// *which* attribute group the global trust estimate sacrificed.
pub fn evaluate_per_attribute(
    dataset: &Dataset,
    truth: &GroundTruth,
    lookup: impl Fn(ObjectId, AttributeId) -> Option<ValueId>,
) -> Vec<(AttributeId, EvalReport)> {
    let mut out = Vec::new();
    for a in dataset.attribute_ids() {
        let view = dataset.view_of(&[a]);
        let report = evaluate_view(&view, truth, &lookup);
        if report.n_cells > 0 {
            out.push((a, report));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{DatasetBuilder, Value};

    /// Dataset: one object, two attributes. a1 candidates {x(2 votes), y},
    /// truth x. a2 candidates {p, q}, truth r (unclaimed).
    fn fixture() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::text("x")).unwrap();
        b.claim("s2", "o", "a1", Value::text("x")).unwrap();
        b.claim("s3", "o", "a1", Value::text("y")).unwrap();
        b.claim("s1", "o", "a2", Value::text("p")).unwrap();
        b.claim("s2", "o", "a2", Value::text("q")).unwrap();
        b.truth("o", "a1", Value::text("x"));
        b.truth("o", "a2", Value::text("r"));
        b.build_with_truth()
    }

    fn ids(d: &Dataset) -> (ObjectId, AttributeId, AttributeId) {
        (
            d.object_id("o").unwrap(),
            d.attribute_id("a1").unwrap(),
            d.attribute_id("a2").unwrap(),
        )
    }

    #[test]
    fn correct_and_unclaimable_cells() {
        let (d, t) = fixture();
        let (o, a1, a2) = ids(&d);
        let mut preds = Predictions::new();
        preds.insert((o, a1), d.value_id(&Value::text("x")).unwrap());
        preds.insert((o, a2), d.value_id(&Value::text("p")).unwrap());
        let r = evaluate(&d, &t, &preds);
        // a1: x selected -> TP; y -> TN. a2: p -> FP; q -> TN. Truth r was
        // never claimed: no FN.
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.fp, 1);
        assert_eq!(r.confusion.fn_, 0);
        assert_eq!(r.confusion.tn, 2);
        assert_eq!(r.n_cells, 2);
        assert_eq!(r.n_correct, 1);
        assert!(r.recall > r.precision, "unclaimed truth hurts precision only");
    }

    #[test]
    fn wrong_pick_with_claimed_truth_costs_fn() {
        let (d, t) = fixture();
        let (o, a1, _) = ids(&d);
        let mut preds = Predictions::new();
        preds.insert((o, a1), d.value_id(&Value::text("y")).unwrap());
        let r = evaluate(&d, &t, &preds);
        // a1 only prediction: y -> FP, x (claimed truth) -> FN.
        // a2 abstained: p, q -> TN (truth unclaimed).
        assert_eq!(r.confusion.tp, 0);
        assert_eq!(r.confusion.fp, 1);
        assert_eq!(r.confusion.fn_, 1);
        assert_eq!(r.confusion.tn, 2);
        assert_eq!(r.n_correct, 0);
    }

    #[test]
    fn abstention_on_claimed_truth_costs_fn() {
        let (d, t) = fixture();
        let r = evaluate(&d, &t, &Predictions::new());
        // a1: x -> FN, y -> TN; a2: p, q -> TN.
        assert_eq!(r.confusion.fn_, 1);
        assert_eq!(r.confusion.tn, 3);
        assert_eq!(r.confusion.tp + r.confusion.fp, 0);
    }

    #[test]
    fn prediction_outside_candidates_counts() {
        let (d, t) = fixture();
        let (o, _, a2) = ids(&d);
        // Predict the unclaimed truth r for a2 (an oracle could); r is
        // interned in d's value table because it is the recorded truth.
        let r_id = d.value_id(&Value::text("r")).unwrap();
        let mut preds = Predictions::new();
        preds.insert((o, a2), r_id);
        let rep = evaluate(&d, &t, &preds);
        // a2: predicted r (unclaimed, correct) -> TP, p and q -> TN.
        // a1 abstained: x -> FN, y -> TN.
        assert_eq!(rep.confusion.tp, 1);
        assert_eq!(rep.confusion.fn_, 1);
        assert_eq!(rep.confusion.tn, 3);
        assert_eq!(rep.n_correct, 1);
    }

    #[test]
    fn cells_without_truth_are_skipped() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(1)).unwrap();
        let (d, t) = b.build_with_truth(); // empty truth
        let r = evaluate(&d, &t, &Predictions::new());
        assert_eq!(r.n_cells, 0);
        assert_eq!(r.confusion.total(), 0);
    }

    #[test]
    fn view_restriction_scores_subset_only() {
        let (d, t) = fixture();
        let (o, a1, _) = ids(&d);
        let mut preds = Predictions::new();
        preds.insert((o, a1), d.value_id(&Value::text("x")).unwrap());
        let view = d.view_of(&[a1]);
        let r = evaluate_view(&view, &t, |o, a| preds.get(&(o, a)).copied());
        assert_eq!(r.n_cells, 1);
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.tn, 1);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn per_attribute_breakdown_sums_to_global() {
        let (d, t) = fixture();
        let (o, a1, a2) = ids(&d);
        let mut preds = Predictions::new();
        preds.insert((o, a1), d.value_id(&Value::text("x")).unwrap());
        preds.insert((o, a2), d.value_id(&Value::text("p")).unwrap());
        let global = evaluate(&d, &t, &preds);
        let per_attr = evaluate_per_attribute(&d, &t, |o, a| preds.get(&(o, a)).copied());
        assert_eq!(per_attr.len(), 2);
        let merged = EvalReport::merged(
            &per_attr.iter().map(|(_, r)| *r).collect::<Vec<_>>(),
        );
        assert_eq!(merged.confusion, global.confusion);
        assert_eq!(merged.n_cells, global.n_cells);
        // a1 was answered right, a2 wrong: the breakdown shows it.
        let r1 = per_attr.iter().find(|(a, _)| *a == a1).unwrap().1;
        let r2 = per_attr.iter().find(|(a, _)| *a == a2).unwrap().1;
        assert_eq!(r1.n_correct, 1);
        assert_eq!(r2.n_correct, 0);
    }

    #[test]
    fn per_attribute_skips_truthless_attributes() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "with-truth", Value::int(1)).unwrap();
        b.claim("s", "o", "no-truth", Value::int(2)).unwrap();
        b.truth("o", "with-truth", Value::int(1));
        let (d, t) = b.build_with_truth();
        let per_attr = evaluate_per_attribute(&d, &t, |_, _| None);
        assert_eq!(per_attr.len(), 1);
        assert_eq!(per_attr[0].0, d.attribute_id("with-truth").unwrap());
    }

    #[test]
    fn duplicate_claims_of_same_value_count_once() {
        // x claimed by two sources is ONE candidate instance.
        let (d, t) = fixture();
        let (o, a1, _) = ids(&d);
        let mut preds = Predictions::new();
        preds.insert((o, a1), d.value_id(&Value::text("x")).unwrap());
        let view = d.view_of(&[a1]);
        let r = evaluate_view(&view, &t, |o, a| preds.get(&(o, a)).copied());
        assert_eq!(r.confusion.total(), 2, "x and y, not three claims");
    }
}
