//! Property tests for the hand-rolled CSV layer: anything we write must
//! parse back identically, whatever the field contents.

use proptest::prelude::*;

use td_model::csv::{dataset_from_csv, dataset_to_csv, parse_value};
use td_model::{DatasetBuilder, Value};

/// Names that survive the interner (non-empty arbitrary text).
fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{1,12}").expect("valid regex")
}

/// Arbitrary claim values across all four kinds.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_name().prop_map(Value::text),
        any::<i64>().prop_map(Value::int),
        (-1e9f64..1e9).prop_map(Value::float),
        any::<bool>().prop_map(Value::bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_preserves_claim_count(
        rows in proptest::collection::vec(
            (arb_name(), arb_name(), arb_name(), arb_value()),
            1..20,
        )
    ) {
        let mut b = DatasetBuilder::new();
        let mut expected = 0usize;
        let mut seen = std::collections::HashSet::new();
        for (s, o, a, v) in &rows {
            // Skip conflicting triples (same cell, different value): the
            // builder rejects them by design.
            if seen.insert((s.clone(), o.clone(), a.clone())) {
                b.claim(s, o, a, v.clone()).expect("first claim per cell");
                expected += 1;
            }
        }
        let d = b.build();
        prop_assert_eq!(d.n_claims(), expected);

        let csv = dataset_to_csv(&d);
        let back = dataset_from_csv(&csv).expect("own output must parse");
        prop_assert_eq!(back.n_claims(), d.n_claims());
        prop_assert_eq!(back.n_sources(), d.n_sources());
        prop_assert_eq!(back.n_objects(), d.n_objects());
        prop_assert_eq!(back.n_attributes(), d.n_attributes());
    }

    #[test]
    fn parse_value_int_roundtrip(i in any::<i64>()) {
        prop_assert_eq!(parse_value(&i.to_string()), Value::Int(i));
    }

    #[test]
    fn parse_value_never_panics(s in "[ -~]{0,40}") {
        let _ = parse_value(&s);
    }

    #[test]
    fn arbitrary_text_never_breaks_the_writer(
        field in "[ -~\n\"]{0,30}",
    ) {
        // A single claim whose value is hostile text must roundtrip.
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a", Value::text(field.clone())).expect("single claim");
        let d = b.build();
        let csv = dataset_to_csv(&d);
        let back = dataset_from_csv(&csv).expect("writer output parses");
        prop_assert_eq!(back.n_claims(), 1);
        prop_assert!(back.value_id(&Value::text(field.clone())).is_some()
            // Numeric-looking text re-parses as a number; accept the
            // documented type inference.
            || field.parse::<i64>().is_ok()
            || field.parse::<f64>().is_ok()
            || field == "true" || field == "false");
    }
}
