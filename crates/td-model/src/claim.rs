//! The atomic observation: one source asserting one value for one cell.

use serde::{Deserialize, Serialize};

use crate::ids::{AttributeId, ObjectId, SourceId, ValueId};

/// A single observation `(source, object, attribute) → value`.
///
/// Claims are stored interned: the value payload lives in the dataset's
/// value table and is referenced by [`ValueId`]. A dataset holds at most
/// one claim per `(source, object, attribute)` triple (enforced by
/// [`crate::DatasetBuilder`]), matching the one-claim-per-cell-per-source
/// assumption of the truth-discovery problem statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Claim {
    /// The asserting source.
    pub source: SourceId,
    /// The object the claim is about.
    pub object: ObjectId,
    /// The attribute of the object the claim is about.
    pub attribute: AttributeId,
    /// The asserted (interned) value.
    pub value: ValueId,
}

impl Claim {
    /// Creates a claim from its four components.
    pub fn new(source: SourceId, object: ObjectId, attribute: AttributeId, value: ValueId) -> Self {
        Self {
            source,
            object,
            attribute,
            value,
        }
    }

    /// The `(object, attribute)` cell this claim targets.
    #[inline]
    pub fn cell(&self) -> (ObjectId, AttributeId) {
        (self.object, self.attribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_projects_object_and_attribute() {
        let c = Claim::new(
            SourceId::new(1),
            ObjectId::new(2),
            AttributeId::new(3),
            ValueId::new(4),
        );
        assert_eq!(c.cell(), (ObjectId::new(2), AttributeId::new(3)));
        assert_eq!(c.source, SourceId::new(1));
        assert_eq!(c.value, ValueId::new(4));
    }
}
