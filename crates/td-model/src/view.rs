//! Zero-copy restriction of a dataset to a subset of attributes.

use crate::claim::Claim;
use crate::dataset::{Cell, Dataset};
use crate::ids::{AttributeId, SourceId, ValueId};
use crate::value::Value;

/// A borrowed view of a [`Dataset`] restricted to an attribute subset.
///
/// This is the execution unit of TD-AC: the base truth-discovery
/// algorithm is run once per attribute cluster, each run seeing only the
/// claims whose attribute belongs to the cluster. Because the underlying
/// claim vector is sorted by attribute, a view iterates contiguous slices
/// and copies nothing.
///
/// Entity ids are *global*: a view keeps the parent dataset's source /
/// object / attribute / value id spaces so results from different
/// partitions can be merged without translation.
#[derive(Debug, Clone)]
pub struct DatasetView<'a> {
    dataset: &'a Dataset,
    /// Selected attributes, ascending.
    attrs: Vec<AttributeId>,
    /// `attribute.index() -> selected?`, length `dataset.n_attributes()`.
    mask: Vec<bool>,
}

impl<'a> DatasetView<'a> {
    /// View over every attribute of `dataset`.
    pub fn all(dataset: &'a Dataset) -> Self {
        let attrs: Vec<AttributeId> = dataset.attribute_ids().collect();
        let mask = vec![true; dataset.n_attributes()];
        Self {
            dataset,
            attrs,
            mask,
        }
    }

    /// View restricted to `attributes` (deduplicated, sorted).
    ///
    /// Attribute ids outside the dataset are ignored.
    pub fn of(dataset: &'a Dataset, attributes: &[AttributeId]) -> Self {
        let mut mask = vec![false; dataset.n_attributes()];
        for a in attributes {
            if a.index() < mask.len() {
                mask[a.index()] = true;
            }
        }
        let attrs: Vec<AttributeId> = dataset
            .attribute_ids()
            .filter(|a| mask[a.index()])
            .collect();
        Self {
            dataset,
            attrs,
            mask,
        }
    }

    /// The parent dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The selected attributes, ascending.
    pub fn attributes(&self) -> &[AttributeId] {
        &self.attrs
    }

    /// Whether `attribute` is part of this view.
    #[inline]
    pub fn contains_attribute(&self, attribute: AttributeId) -> bool {
        attribute.index() < self.mask.len() && self.mask[attribute.index()]
    }

    /// Number of sources in the *global* id space (sources without claims
    /// in this view are still addressable; algorithms give them default
    /// trust).
    pub fn n_sources(&self) -> usize {
        self.dataset.n_sources()
    }

    /// Number of selected attributes.
    pub fn n_attributes(&self) -> usize {
        self.attrs.len()
    }

    /// Iterates the non-empty cells of the selected attributes.
    pub fn cells(&self) -> impl Iterator<Item = &'a Cell> + '_ {
        self.attrs
            .iter()
            .flat_map(move |&a| self.dataset.cells_of_attribute(a).iter())
    }

    /// Number of cells in the view.
    pub fn n_cells(&self) -> usize {
        self.attrs
            .iter()
            .map(|&a| self.dataset.cells_of_attribute(a).len())
            .sum()
    }

    /// Number of claims in the view.
    pub fn n_claims(&self) -> usize {
        self.cells().map(Cell::n_claims).sum()
    }

    /// The claims of a cell (delegates to the dataset).
    pub fn cell_claims(&self, cell: &Cell) -> &'a [Claim] {
        self.dataset.cell_claims(cell)
    }

    /// Iterates one source's claims restricted to this view.
    pub fn claims_of_source(&self, source: SourceId) -> impl Iterator<Item = &'a Claim> + '_ {
        self.dataset
            .claims_of_source(source)
            .filter(move |c| self.contains_attribute(c.attribute))
    }

    /// Resolves a value id.
    pub fn value(&self, id: ValueId) -> &'a Value {
        self.dataset.value(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        for s in ["s1", "s2"] {
            for o in ["o1", "o2", "o3"] {
                for a in ["a1", "a2", "a3", "a4"] {
                    b.claim(s, o, a, Value::text(format!("{s}-{o}-{a}"))).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn all_view_covers_everything() {
        let d = dataset();
        let v = d.view_all();
        assert_eq!(v.n_attributes(), 4);
        assert_eq!(v.n_cells(), 12);
        assert_eq!(v.n_claims(), 24);
        assert_eq!(v.n_sources(), 2);
    }

    #[test]
    fn restricted_view_filters_cells_and_claims() {
        let d = dataset();
        let a1 = d.attribute_id("a1").unwrap();
        let a3 = d.attribute_id("a3").unwrap();
        let v = d.view_of(&[a3, a1]); // order & dedup handled
        assert_eq!(v.attributes(), &[a1, a3]);
        assert_eq!(v.n_cells(), 6);
        assert_eq!(v.n_claims(), 12);
        assert!(v.cells().all(|c| c.attribute == a1 || c.attribute == a3));
    }

    #[test]
    fn source_claims_are_filtered() {
        let d = dataset();
        let a2 = d.attribute_id("a2").unwrap();
        let v = d.view_of(&[a2]);
        let s1 = d.source_id("s1").unwrap();
        let claims: Vec<_> = v.claims_of_source(s1).collect();
        assert_eq!(claims.len(), 3);
        assert!(claims.iter().all(|c| c.attribute == a2 && c.source == s1));
    }

    #[test]
    fn duplicate_and_unknown_attributes_are_tolerated() {
        let d = dataset();
        let a1 = d.attribute_id("a1").unwrap();
        let v = d.view_of(&[a1, a1, AttributeId::new(999)]);
        assert_eq!(v.n_attributes(), 1);
        assert!(!v.contains_attribute(AttributeId::new(999)));
    }

    #[test]
    fn empty_view_is_well_formed() {
        let d = dataset();
        let v = d.view_of(&[]);
        assert_eq!(v.n_attributes(), 0);
        assert_eq!(v.n_cells(), 0);
        assert_eq!(v.n_claims(), 0);
        assert_eq!(v.cells().count(), 0);
    }
}
