//! Dataset statistics, including the paper's Data Coverage Rate (DCR).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Summary statistics of a dataset, matching the columns of the paper's
/// Table 8 (sources, objects, attributes, observations, DCR).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of sources.
    pub n_sources: usize,
    /// Number of objects.
    pub n_objects: usize,
    /// Number of attributes.
    pub n_attributes: usize,
    /// Number of observations (claims).
    pub n_observations: usize,
    /// Data Coverage Rate in percent, per the paper's §4.4 formula.
    pub dcr: f64,
}

impl DatasetStats {
    /// Computes the statistics of `dataset`.
    pub fn of(dataset: &Dataset) -> Self {
        Self {
            n_sources: dataset.n_sources(),
            n_objects: dataset.n_objects(),
            n_attributes: dataset.n_attributes(),
            n_observations: dataset.n_claims(),
            dcr: data_coverage_rate(dataset),
        }
    }
}

/// Data Coverage Rate (paper §4.4):
///
/// ```text
/// DCR = (1 - Σ_o (|S_o|·|A_o| - Σ_{s∈S_o} |A_{o,s}|) / Σ_o (|S_o|·|A_o|)) · 100
///     =  Σ_o Σ_{s∈S_o} |A_{o,s}|  /  Σ_o (|S_o|·|A_o|)  · 100
/// ```
///
/// where `S_o` is the set of sources with at least one claim about object
/// `o`, `A_o` the set of attributes of `o` claimed by anyone, and
/// `A_{o,s}` the attributes of `o` claimed by source `s`. A dataset where
/// every covering source answers every covered attribute of every object
/// has `DCR = 100`; sparse per-source coverage drives it down. Returns
/// `100.0` for an empty dataset (vacuously fully covered).
pub fn data_coverage_rate(dataset: &Dataset) -> f64 {
    let n_obj = dataset.n_objects();
    if n_obj == 0 || dataset.n_claims() == 0 {
        return 100.0;
    }
    // Per object: which sources touch it, which attributes it has, and how
    // many (source, attribute) slots are filled.
    let n_src = dataset.n_sources();
    let mut sources_of_obj = vec![0usize; n_obj]; // |S_o|
    let mut attrs_of_obj = vec![0usize; n_obj]; // |A_o|
    let mut filled_of_obj = vec![0usize; n_obj]; // Σ_s |A_{o,s}|

    // Mark (object, source) pairs via a per-object bitset over sources.
    let mut seen_source = vec![false; n_obj * n_src];
    for cell in dataset.cells() {
        let o = cell.object.index();
        attrs_of_obj[o] += 1;
        filled_of_obj[o] += cell.n_claims();
        for claim in dataset.cell_claims(cell) {
            let slot = o * n_src + claim.source.index();
            if !seen_source[slot] {
                seen_source[slot] = true;
                sources_of_obj[o] += 1;
            }
        }
    }

    let total_slots: usize = (0..n_obj).map(|o| sources_of_obj[o] * attrs_of_obj[o]).sum();
    if total_slots == 0 {
        return 100.0;
    }
    let filled: usize = filled_of_obj.iter().sum();
    filled as f64 / total_slots as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::value::Value;

    #[test]
    fn full_coverage_is_100() {
        let mut b = DatasetBuilder::new();
        for s in ["s1", "s2", "s3"] {
            for o in ["o1", "o2"] {
                for a in ["a1", "a2"] {
                    b.claim(s, o, a, Value::int(1)).unwrap();
                }
            }
        }
        let d = b.build();
        assert!((data_coverage_rate(&d) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn half_coverage_is_50() {
        // Two sources, one object, two attributes; each source answers
        // exactly one attribute: slots = 2 sources * 2 attrs = 4, filled 2.
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        assert!((data_coverage_rate(&d) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_is_vacuously_covered() {
        let d = DatasetBuilder::new().build();
        assert_eq!(data_coverage_rate(&d), 100.0);
    }

    #[test]
    fn uncovered_attributes_of_other_objects_do_not_count() {
        // o1 has attributes a1, a2; o2 only a1. Coverage is per object.
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o1", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o1", "a2", Value::int(1)).unwrap();
        b.claim("s1", "o2", "a1", Value::int(1)).unwrap();
        let d = b.build();
        // s1 fully covers both objects' claimed attribute sets.
        assert!((data_coverage_rate(&d) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stats_report_counts() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o", "a1", Value::int(2)).unwrap();
        let d = b.build();
        let st = DatasetStats::of(&d);
        assert_eq!(st.n_sources, 2);
        assert_eq!(st.n_objects, 1);
        assert_eq!(st.n_attributes, 1);
        assert_eq!(st.n_observations, 2);
        assert!((st.dcr - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dcr_decreases_with_sparsity() {
        // Dense dataset vs the same with claims removed.
        let mut dense = DatasetBuilder::new();
        let mut sparse = DatasetBuilder::new();
        for s in 0..4 {
            for a in 0..4 {
                dense
                    .claim(&format!("s{s}"), "o", &format!("a{a}"), Value::int(1))
                    .unwrap();
                if (s + a) % 2 == 0 {
                    sparse
                        .claim(&format!("s{s}"), "o", &format!("a{a}"), Value::int(1))
                        .unwrap();
                }
            }
        }
        let d_dense = dense.build();
        let d_sparse = sparse.build();
        assert!(data_coverage_rate(&d_sparse) < data_coverage_rate(&d_dense));
    }
}
