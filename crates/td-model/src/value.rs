//! Typed claim values with total equality and hashing.
//!
//! Truth-discovery algorithms vote over *exact* value identity, so
//! [`Value`] implements `Eq` and `Hash` for every variant — floats are
//! compared by canonicalized bit pattern (`-0.0 == 0.0`, `NaN` is
//! rejected at construction). Similarity-aware algorithms (TruthFinder's
//! implication, AccuSim) additionally need a graded notion of closeness,
//! provided by [`crate::similarity`].

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A claim payload: the value a source asserts for an `(object, attribute)`
/// cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "t", content = "v")]
pub enum Value {
    /// Free text (answers, names, categorical labels).
    Text(String),
    /// Integer data (years, counts).
    Int(i64),
    /// Floating point data (prices, coordinates). Never NaN.
    Float(f64),
    /// Boolean data.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Constructs a float value, panicking on NaN (NaN would break the
    /// one-truth voting semantics — two NaN claims would never agree).
    pub fn float(f: f64) -> Self {
        assert!(!f.is_nan(), "NaN is not a valid claim value");
        Value::Float(f)
    }

    /// Fallible float constructor, returning `None` on NaN.
    pub fn try_float(f: f64) -> Option<Self> {
        if f.is_nan() {
            None
        } else {
            Some(Value::Float(f))
        }
    }

    /// Convenience constructor for boolean values.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Short lowercase name of the variant, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Text(_) => "text",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
        }
    }

    /// Canonical bit pattern used for float equality: `-0.0` folds onto
    /// `0.0` so the two compare (and hash) equal.
    fn float_bits(f: f64) -> u64 {
        if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Text(s) => {
                0u8.hash(state);
                s.hash(state);
            }
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                Self::float_bits(*f).hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_variants() {
        assert_eq!(Value::text("Algeria"), Value::text("Algeria"));
        assert_ne!(Value::text("Algeria"), Value::text("Senegal"));
        assert_eq!(Value::int(2019), Value::int(2019));
        assert_eq!(Value::bool(true), Value::bool(true));
        assert_ne!(Value::bool(true), Value::bool(false));
    }

    #[test]
    fn cross_variant_values_never_equal() {
        assert_ne!(Value::int(1), Value::float(1.0));
        assert_ne!(Value::text("1"), Value::int(1));
        assert_ne!(Value::bool(true), Value::int(1));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::float(0.0), Value::float(-0.0));
        assert_eq!(hash_of(&Value::float(0.0)), hash_of(&Value::float(-0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Value::float(f64::NAN);
    }

    #[test]
    fn try_float_filters_nan() {
        assert!(Value::try_float(f64::NAN).is_none());
        assert_eq!(Value::try_float(1.5), Some(Value::Float(1.5)));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::text("x")), hash_of(&Value::text("x")));
        assert_eq!(hash_of(&Value::int(7)), hash_of(&Value::int(7)));
    }

    #[test]
    fn display_renders_payload() {
        assert_eq!(Value::text("abc").to_string(), "abc");
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::float(2.5).to_string(), "2.5");
        assert_eq!(Value::bool(false).to_string(), "false");
    }

    #[test]
    fn serde_roundtrip() {
        for v in [
            Value::text("hello"),
            Value::int(42),
            Value::float(3.25),
            Value::bool(true),
        ] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::text("").kind(), "text");
        assert_eq!(Value::int(0).kind(), "int");
        assert_eq!(Value::float(0.0).kind(), "float");
        assert_eq!(Value::bool(false).kind(), "bool");
    }
}
