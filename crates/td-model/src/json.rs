//! JSON (de)serialization of datasets and ground truth.
//!
//! Datasets are serialized with their indexes included (they are small
//! relative to the claims), while interner reverse maps are rebuilt on
//! load. The format is a stable, versioned envelope so experiment inputs
//! and generated workloads can be archived and replayed.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::ModelError;
use crate::truth::GroundTruth;

/// Current envelope version; bump on breaking layout changes.
pub const FORMAT_VERSION: u32 = 1;

/// Serialized bundle of a dataset plus optional ground truth.
#[derive(Debug, Serialize, Deserialize)]
pub struct DatasetBundle {
    /// Envelope version ([`FORMAT_VERSION`] at write time).
    pub version: u32,
    /// The dataset proper.
    pub dataset: Dataset,
    /// Ground truth, when known.
    pub truth: Option<GroundTruth>,
}

/// Serializes `dataset` (and `truth` if given) to a JSON string.
pub fn to_json(dataset: &Dataset, truth: Option<&GroundTruth>) -> String {
    let bundle = DatasetBundle {
        version: FORMAT_VERSION,
        dataset: dataset.clone(),
        truth: truth.cloned(),
    };
    serde_json::to_string(&bundle).expect("dataset serialization cannot fail")
}

/// Parses a bundle previously produced by [`to_json`], rebuilding the
/// interner lookup indexes.
pub fn from_json(json: &str) -> Result<(Dataset, Option<GroundTruth>), ModelError> {
    let mut bundle: DatasetBundle =
        serde_json::from_str(json).map_err(|e| ModelError::Parse(e.to_string()))?;
    if bundle.version != FORMAT_VERSION {
        return Err(ModelError::Parse(format!(
            "unsupported dataset format version {} (expected {FORMAT_VERSION})",
            bundle.version
        )));
    }
    bundle.dataset.rebuild_indexes();
    Ok((bundle.dataset, bundle.truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::value::Value;

    fn sample() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::text("x")).unwrap();
        b.claim("s2", "o", "a", Value::text("y")).unwrap();
        b.claim("s1", "o", "b", Value::int(3)).unwrap();
        b.truth("o", "a", Value::text("x"));
        b.build_with_truth()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (d, t) = sample();
        let json = to_json(&d, Some(&t));
        let (d2, t2) = from_json(&json).unwrap();
        let t2 = t2.unwrap();
        assert_eq!(d2.n_sources(), d.n_sources());
        assert_eq!(d2.n_claims(), d.n_claims());
        assert_eq!(d2.n_cells(), d.n_cells());
        assert_eq!(t2.len(), t.len());
        // Interner lookups must work after rebuild.
        let s1 = d2.source_id("s1").unwrap();
        assert_eq!(d2.source_name(s1), "s1");
        let o = d2.object_id("o").unwrap();
        let a = d2.attribute_id("a").unwrap();
        let v = t2.get(o, a).unwrap();
        assert_eq!(d2.value(v), &Value::text("x"));
    }

    #[test]
    fn roundtrip_without_truth() {
        let (d, _) = sample();
        let json = to_json(&d, None);
        let (_, t) = from_json(&json).unwrap();
        assert!(t.is_none());
    }

    #[test]
    fn rejects_wrong_version() {
        let (d, _) = sample();
        let json = to_json(&d, None).replace("\"version\":1", "\"version\":999");
        let err = from_json(&json).unwrap_err();
        assert!(matches!(err, ModelError::Parse(_)));
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_json("not json"), Err(ModelError::Parse(_))));
    }
}
