#![warn(missing_docs)]
// Numeric kernels index several parallel arrays in lockstep; iterator
// rewrites obscure them without gain.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::vec_init_then_push)]

//! # td-model — data model substrate for truth discovery
//!
//! This crate provides the structured world assumed by the TD-AC paper
//! (Tossou & Ba, EDBT 2021) and the whole classic truth-discovery
//! literature: a collection of **sources** `S` making **claims** about the
//! **attributes** `A` of real-world **objects** `O`, in a *one-truth*
//! setting where every `(object, attribute)` cell has exactly one true
//! value and possibly many conflicting false ones, and where a source may
//! cover only part of the objects/attributes (missing data).
//!
//! The central types are:
//!
//! * [`Dataset`] — an immutable, index-accelerated collection of claims,
//!   built through [`DatasetBuilder`]. Sources, objects, attributes and
//!   values are interned into dense `u32` ids so algorithms can use flat
//!   vectors instead of hash maps on hot paths.
//! * [`DatasetView`] — a borrowed restriction of a dataset to a subset of
//!   attributes. TD-AC runs its base algorithm once per attribute cluster;
//!   views make that possible without copying any claims.
//! * [`GroundTruth`] — the reference assignment of true values used for
//!   evaluation (and by *oracle* baselines).
//! * [`Value`] — a typed claim payload with total equality/hash semantics
//!   (including floats) plus a tunable similarity measure used by
//!   similarity-aware algorithms such as TruthFinder and AccuSim.
//!
//! ```
//! use td_model::{DatasetBuilder, Value};
//!
//! let mut b = DatasetBuilder::new();
//! b.claim("source-1", "afcon-2019", "winner", Value::text("Algeria")).unwrap();
//! b.claim("source-2", "afcon-2019", "winner", Value::text("Senegal")).unwrap();
//! b.claim("source-3", "afcon-2019", "winner", Value::text("Algeria")).unwrap();
//! let dataset = b.build();
//!
//! assert_eq!(dataset.n_sources(), 3);
//! assert_eq!(dataset.n_objects(), 1);
//! assert_eq!(dataset.n_attributes(), 1);
//! assert_eq!(dataset.n_claims(), 3);
//! ```

pub mod claim;
pub mod csv;
pub mod dataset;
pub mod delta;
pub mod error;
pub mod ids;
pub mod json;
pub mod similarity;
pub mod stats;
pub mod truth;
pub mod value;
pub mod view;

pub use claim::Claim;
pub use dataset::{Cell, Dataset, DatasetBuilder};
pub use delta::{ClaimBatch, DeltaDataset, DeltaSummary};
pub use error::ModelError;
pub use ids::{AttributeId, Interner, ObjectId, SourceId, ValueId};
pub use similarity::{SimilarityConfig, ValueSimilarity};
pub use stats::DatasetStats;
pub use truth::GroundTruth;
pub use value::Value;
pub use view::DatasetView;
