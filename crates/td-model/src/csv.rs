//! CSV import/export of claims and ground truth.
//!
//! The interchange format used by the public truth-discovery corpora
//! (DAFNA, the Li et al. deep-web datasets) is a claims table. This
//! module reads and writes:
//!
//! ```csv
//! source,object,attribute,value
//! site-a,afcon2019,winner,Algeria
//! site-b,afcon2019,winner,Senegal
//! ```
//!
//! plus an optional truth table (`object,attribute,value`). Values are
//! parsed as `Int` when they lex as integers, `Float` for decimals,
//! `Bool` for `true`/`false`, `Text` otherwise — override per column is
//! not needed for the reproduction datasets. The parser is hand-rolled
//! (RFC-4180 quoting: quoted fields, doubled quotes, embedded commas and
//! newlines) to stay inside the approved dependency set.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::ModelError;
use crate::truth::GroundTruth;
use crate::value::Value;

/// Parses one CSV record starting at `input[pos..]`; returns the fields
/// and the position after the record's line terminator.
fn parse_record(input: &str, mut pos: usize) -> Result<(Vec<String>, usize), ModelError> {
    let bytes = input.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    while pos < bytes.len() {
        let c = bytes[pos];
        if in_quotes {
            match c {
                b'"' => {
                    if bytes.get(pos + 1) == Some(&b'"') {
                        field.push('"');
                        pos += 2;
                    } else {
                        in_quotes = false;
                        pos += 1;
                    }
                }
                _ => {
                    // Preserve multi-byte characters: find the char at pos.
                    let ch = input[pos..].chars().next().expect("in-bounds char");
                    field.push(ch);
                    pos += ch.len_utf8();
                }
            }
        } else {
            match c {
                b'"' => {
                    if !field.is_empty() {
                        return Err(ModelError::Parse(format!(
                            "unexpected quote inside unquoted field at byte {pos}"
                        )));
                    }
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                b'\r' => {
                    pos += 1;
                    if bytes.get(pos) == Some(&b'\n') {
                        pos += 1;
                    }
                    fields.push(field);
                    return Ok((fields, pos));
                }
                b'\n' => {
                    pos += 1;
                    fields.push(field);
                    return Ok((fields, pos));
                }
                _ => {
                    let ch = input[pos..].chars().next().expect("in-bounds char");
                    field.push(ch);
                    pos += ch.len_utf8();
                }
            }
        }
    }
    if in_quotes {
        return Err(ModelError::Parse("unterminated quoted field".into()));
    }
    fields.push(field);
    Ok((fields, pos))
}

/// Parses a CSV document into records, skipping blank lines.
fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, ModelError> {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let (fields, next) = parse_record(input, pos)?;
        pos = next;
        if fields.len() == 1 && fields[0].is_empty() {
            continue; // blank line
        }
        records.push(fields);
    }
    Ok(records)
}

/// Infers the [`Value`] type of a CSV cell.
pub fn parse_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        if !f.is_nan() {
            return Value::Float(f);
        }
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::text(s),
    }
}

/// Quotes a CSV field if needed.
fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Reads a claims CSV (`source,object,attribute,value`, with header) into
/// a dataset. Rows with a wrong field count or conflicting claims are
/// errors.
pub fn dataset_from_csv(claims_csv: &str) -> Result<Dataset, ModelError> {
    let mut builder = DatasetBuilder::new();
    read_claims_into(claims_csv, &mut builder)?;
    Ok(builder.build())
}

/// Reads claims plus a truth CSV (`object,attribute,value`, with header).
pub fn dataset_from_csv_with_truth(
    claims_csv: &str,
    truth_csv: &str,
) -> Result<(Dataset, GroundTruth), ModelError> {
    let mut builder = DatasetBuilder::new();
    read_claims_into(claims_csv, &mut builder)?;
    let records = parse_csv(truth_csv)?;
    for (i, rec) in records.iter().enumerate().skip(1) {
        if rec.len() != 3 {
            return Err(ModelError::Parse(format!(
                "truth row {i}: expected 3 fields, got {}",
                rec.len()
            )));
        }
        builder.truth(&rec[0], &rec[1], parse_value(&rec[2]));
    }
    Ok(builder.build_with_truth())
}

fn read_claims_into(claims_csv: &str, builder: &mut DatasetBuilder) -> Result<(), ModelError> {
    let records = parse_csv(claims_csv)?;
    if records.is_empty() {
        return Err(ModelError::Parse("empty claims CSV".into()));
    }
    for (i, rec) in records.iter().enumerate().skip(1) {
        if rec.len() != 4 {
            return Err(ModelError::Parse(format!(
                "claims row {i}: expected 4 fields, got {}",
                rec.len()
            )));
        }
        builder.claim(&rec[0], &rec[1], &rec[2], parse_value(&rec[3]))?;
    }
    Ok(())
}

/// Writes a dataset's claims as CSV (with header).
pub fn dataset_to_csv(dataset: &Dataset) -> String {
    let mut out = String::from("source,object,attribute,value\n");
    for claim in dataset.claims() {
        out.push_str(&format!(
            "{},{},{},{}\n",
            quote(dataset.source_name(claim.source)),
            quote(dataset.object_name(claim.object)),
            quote(dataset.attribute_name(claim.attribute)),
            quote(&dataset.value(claim.value).to_string()),
        ));
    }
    out
}

/// Writes a ground truth as CSV (with header), resolving names through
/// `dataset`.
pub fn truth_to_csv(dataset: &Dataset, truth: &GroundTruth) -> String {
    let mut rows: Vec<_> = truth.iter().collect();
    rows.sort_by_key(|&(o, a, _)| (o, a));
    let mut out = String::from("object,attribute,value\n");
    for (o, a, v) in rows {
        out.push_str(&format!(
            "{},{},{}\n",
            quote(dataset.object_name(o)),
            quote(dataset.attribute_name(a)),
            quote(&dataset.value(v).to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLAIMS: &str = "source,object,attribute,value\n\
                          s1,o1,a1,Algeria\n\
                          s2,o1,a1,Senegal\n\
                          s1,o1,a2,2019\n\
                          s2,o1,a2,1994\n";

    #[test]
    fn roundtrip_claims() {
        let d = dataset_from_csv(CLAIMS).unwrap();
        assert_eq!(d.n_sources(), 2);
        assert_eq!(d.n_claims(), 4);
        let csv = dataset_to_csv(&d);
        let d2 = dataset_from_csv(&csv).unwrap();
        assert_eq!(d2.n_claims(), 4);
        assert!(
            d2.value_id(&Value::int(2019)).is_some(),
            "numeric values survive the roundtrip as ints"
        );
    }

    #[test]
    fn truth_roundtrip() {
        let truth_csv = "object,attribute,value\no1,a1,Algeria\no1,a2,2019\n";
        let (d, t) = dataset_from_csv_with_truth(CLAIMS, truth_csv).unwrap();
        assert_eq!(t.len(), 2);
        let o = d.object_id("o1").unwrap();
        let a = d.attribute_id("a1").unwrap();
        assert_eq!(d.value(t.get(o, a).unwrap()), &Value::text("Algeria"));
        let back = truth_to_csv(&d, &t);
        let (_, t2) = dataset_from_csv_with_truth(CLAIMS, &back).unwrap();
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn value_type_inference() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("-7"), Value::Int(-7));
        assert_eq!(parse_value("2.5"), Value::Float(2.5));
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("false"), Value::Bool(false));
        assert_eq!(parse_value("Algeria"), Value::text("Algeria"));
        assert_eq!(parse_value(""), Value::text(""));
        assert_eq!(parse_value("NaN"), Value::text("NaN"), "NaN stays text");
    }

    #[test]
    fn quoting_handles_commas_quotes_and_newlines() {
        let tricky = "source,object,attribute,value\n\
                      \"s,1\",o,a,\"He said \"\"hi\"\"\"\n\
                      s2,o,a,\"line1\nline2\"\n";
        let d = dataset_from_csv(tricky).unwrap();
        assert_eq!(d.n_claims(), 2);
        assert!(d.source_id("s,1").is_some());
        let csv = dataset_to_csv(&d);
        let d2 = dataset_from_csv(&csv).unwrap();
        assert_eq!(d2.n_claims(), 2);
        assert!(d2.source_id("s,1").is_some());
        assert!(d2.value_id(&Value::text("line1\nline2")).is_some());
    }

    #[test]
    fn crlf_line_endings() {
        let crlf = "source,object,attribute,value\r\ns1,o,a,1\r\ns2,o,a,2\r\n";
        let d = dataset_from_csv(crlf).unwrap();
        assert_eq!(d.n_claims(), 2);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let gappy = "source,object,attribute,value\n\ns1,o,a,1\n\n\ns2,o,a,2\n";
        let d = dataset_from_csv(gappy).unwrap();
        assert_eq!(d.n_claims(), 2);
    }

    #[test]
    fn wrong_field_count_is_an_error() {
        let bad = "source,object,attribute,value\ns1,o,a\n";
        let err = dataset_from_csv(bad).unwrap_err();
        assert!(err.to_string().contains("expected 4 fields"));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let bad = "source,object,attribute,value\ns1,o,a,\"oops\n";
        assert!(matches!(dataset_from_csv(bad), Err(ModelError::Parse(_))));
    }

    #[test]
    fn conflicting_rows_surface_the_model_error() {
        let bad = "source,object,attribute,value\ns1,o,a,1\ns1,o,a,2\n";
        assert!(matches!(
            dataset_from_csv(bad),
            Err(ModelError::ConflictingClaim { .. })
        ));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(dataset_from_csv("").is_err());
    }

    #[test]
    fn unicode_fields_survive() {
        let claims = "source,object,attribute,value\nsrc-é,objet,propriété,Sénégal\n";
        let d = dataset_from_csv(claims).unwrap();
        assert!(d.source_id("src-é").is_some());
        assert!(d.value_id(&Value::text("Sénégal")).is_some());
    }
}
