//! Ground-truth assignments used for evaluation and oracle baselines.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{AttributeId, ObjectId, ValueId};

/// The reference assignment of true values per `(object, attribute)` cell.
///
/// Ground truth is *evaluation metadata*, deliberately separate from
/// [`crate::Dataset`]: truth-discovery algorithms never see it, while the
/// metrics crate and the paper's *Oracle* partitioning baseline do. Truth
/// may be partial — real datasets (Stocks, Flights in the paper) only have
/// a gold standard for a subset of cells.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<TruthEntry>", into = "Vec<TruthEntry>")]
pub struct GroundTruth {
    entries: HashMap<(ObjectId, AttributeId), ValueId>,
}

/// JSON-friendly representation of one ground-truth entry (tuple map keys
/// are not representable in JSON, so the map round-trips as a list).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TruthEntry {
    /// Object of the cell.
    pub object: ObjectId,
    /// Attribute of the cell.
    pub attribute: AttributeId,
    /// True value of the cell.
    pub value: ValueId,
}

impl From<Vec<TruthEntry>> for GroundTruth {
    fn from(v: Vec<TruthEntry>) -> Self {
        GroundTruth {
            entries: v
                .into_iter()
                .map(|e| ((e.object, e.attribute), e.value))
                .collect(),
        }
    }
}

impl From<GroundTruth> for Vec<TruthEntry> {
    fn from(t: GroundTruth) -> Self {
        let mut v: Vec<TruthEntry> = t
            .entries
            .into_iter()
            .map(|((object, attribute), value)| TruthEntry {
                object,
                attribute,
                value,
            })
            .collect();
        v.sort_by_key(|e| (e.object, e.attribute));
        v
    }
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing map.
    pub fn from_map(entries: HashMap<(ObjectId, AttributeId), ValueId>) -> Self {
        Self { entries }
    }

    /// Records the true value of a cell, replacing any previous entry.
    pub fn set(&mut self, object: ObjectId, attribute: AttributeId, value: ValueId) {
        self.entries.insert((object, attribute), value);
    }

    /// The true value of a cell, if known.
    pub fn get(&self, object: ObjectId, attribute: AttributeId) -> Option<ValueId> {
        self.entries.get(&(object, attribute)).copied()
    }

    /// Whether the cell has a known truth.
    pub fn contains(&self, object: ObjectId, attribute: AttributeId) -> bool {
        self.entries.contains_key(&(object, attribute))
    }

    /// Number of cells with known truth.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no truth is known at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `((object, attribute), value)` entries
    /// (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, AttributeId, ValueId)> + '_ {
        self.entries.iter().map(|(&(o, a), &v)| (o, a, v))
    }

    /// Restricts the truth to the given attributes (used when evaluating a
    /// single partition of a TD-AC run in isolation).
    pub fn restricted_to(&self, attributes: &[AttributeId]) -> GroundTruth {
        let keep: std::collections::HashSet<AttributeId> = attributes.iter().copied().collect();
        GroundTruth {
            entries: self
                .entries
                .iter()
                .filter(|((_, a), _)| keep.contains(a))
                .map(|(&k, &v)| (k, v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oa(o: u32, a: u32) -> (ObjectId, AttributeId) {
        (ObjectId::new(o), AttributeId::new(a))
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = GroundTruth::new();
        assert!(t.is_empty());
        let (o, a) = oa(0, 1);
        t.set(o, a, ValueId::new(9));
        assert_eq!(t.get(o, a), Some(ValueId::new(9)));
        assert!(t.contains(o, a));
        assert!(!t.contains(ObjectId::new(1), a));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_overwrites() {
        let mut t = GroundTruth::new();
        let (o, a) = oa(0, 0);
        t.set(o, a, ValueId::new(1));
        t.set(o, a, ValueId::new(2));
        assert_eq!(t.get(o, a), Some(ValueId::new(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn restriction_keeps_only_requested_attributes() {
        let mut t = GroundTruth::new();
        t.set(ObjectId::new(0), AttributeId::new(0), ValueId::new(0));
        t.set(ObjectId::new(0), AttributeId::new(1), ValueId::new(1));
        t.set(ObjectId::new(1), AttributeId::new(1), ValueId::new(2));
        let r = t.restricted_to(&[AttributeId::new(1)]);
        assert_eq!(r.len(), 2);
        assert!(r.get(ObjectId::new(0), AttributeId::new(0)).is_none());
        assert_eq!(
            r.get(ObjectId::new(1), AttributeId::new(1)),
            Some(ValueId::new(2))
        );
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut t = GroundTruth::new();
        t.set(ObjectId::new(0), AttributeId::new(0), ValueId::new(5));
        t.set(ObjectId::new(2), AttributeId::new(3), ValueId::new(6));
        let mut got: Vec<_> = t.iter().collect();
        got.sort_by_key(|&(o, a, _)| (o, a));
        assert_eq!(
            got,
            vec![
                (ObjectId::new(0), AttributeId::new(0), ValueId::new(5)),
                (ObjectId::new(2), AttributeId::new(3), ValueId::new(6)),
            ]
        );
    }
}
