//! Append-only claim deltas over an immutable [`Dataset`].
//!
//! The incremental truth-discovery engine (`tdac_core::TdacSession`)
//! ingests claims in batches instead of rebuilding the dataset from
//! scratch. The model-layer vocabulary for that lives here:
//!
//! * [`ClaimBatch`] — a name-based buffer of claims to append, mirroring
//!   [`crate::DatasetBuilder::claim`]'s conflict discipline (identical
//!   re-assertions are no-ops, contradictory ones are errors — claims
//!   are append-only, never updated in place);
//! * [`Dataset::apply_batch`] — merges a batch into a new dataset with
//!   **stable entity ids** (existing sources/objects/attributes/values
//!   keep their ids; new entities append to the interners), which is
//!   what lets downstream caches — truth-vector rows, distance-matrix
//!   entries, per-group results — survive an ingest;
//! * [`DeltaSummary`] — what a batch actually changed: the sorted dirty
//!   attribute set and the counts of new entities, driving the
//!   dirty-attribute recomputation rules documented in
//!   `docs/STREAMING.md`;
//! * [`DeltaDataset`] — the accumulated dataset plus ingest bookkeeping,
//!   enforcing the [`Dataset::validate_for_discovery`] discipline at the
//!   base and after every batch.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::ModelError;
use crate::ids::AttributeId;
use crate::value::Value;

/// A buffered batch of claims to append to a [`Dataset`], by entity
/// name. Building a batch never fails; duplicate and conflicting rows
/// are resolved (or rejected) when the batch is applied, against both
/// the target dataset and the batch itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClaimBatch {
    rows: Vec<(String, String, String, Value)>,
}

impl ClaimBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one claim: `source` asserts that `attribute` of `object`
    /// has `value`.
    pub fn claim(
        &mut self,
        source: impl Into<String>,
        object: impl Into<String>,
        attribute: impl Into<String>,
        value: Value,
    ) -> &mut Self {
        self.rows
            .push((source.into(), object.into(), attribute.into(), value));
        self
    }

    /// Number of buffered rows (before de-duplication on apply).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The buffered `(source, object, attribute, value)` rows, in
    /// insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &(String, String, String, Value)> {
        self.rows.iter()
    }
}

/// What one applied [`ClaimBatch`] changed, as seen by incremental
/// consumers deciding how much cached state survives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSummary {
    /// Attributes touched by at least one appended claim, ascending.
    /// (Attributes whose *reference truth* changed as a knock-on effect
    /// are a consumer-level notion — see `tdac_core`'s session.)
    pub dirty_attributes: Vec<AttributeId>,
    /// Sources first seen in this batch.
    pub new_sources: usize,
    /// Objects first seen in this batch.
    pub new_objects: usize,
    /// Attributes first seen in this batch.
    pub new_attributes: usize,
    /// Claims actually appended (batch rows minus duplicates).
    pub appended_claims: usize,
}

impl DeltaSummary {
    /// Whether the batch changed nothing at all (every row was a
    /// duplicate of an existing claim and no new entity was named).
    pub fn is_noop(&self) -> bool {
        self.appended_claims == 0
            && self.new_sources == 0
            && self.new_objects == 0
            && self.new_attributes == 0
    }

    /// Whether the batch grew an entity dimension (new sources, objects
    /// or attributes) rather than only adding claims between known ones.
    pub fn grew_entities(&self) -> bool {
        self.new_sources > 0 || self.new_objects > 0 || self.new_attributes > 0
    }
}

/// An append-only sequence of claim batches over a validated base
/// [`Dataset`]: the current accumulated dataset plus ingest counters.
///
/// Both the base and every post-batch state satisfy
/// [`Dataset::validate_for_discovery`] (appending claims can only grow
/// the counts that validation checks, so the per-batch re-check is a
/// cheap invariant assertion, not a way to lose data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaDataset {
    current: Dataset,
    batches_applied: usize,
    claims_appended: usize,
}

impl DeltaDataset {
    /// Starts from a base dataset, rejecting degenerate ones up front.
    pub fn new(base: Dataset) -> Result<Self, ModelError> {
        base.validate_for_discovery()?;
        Ok(Self {
            current: base,
            batches_applied: 0,
            claims_appended: 0,
        })
    }

    /// The accumulated dataset (base plus every applied batch).
    pub fn current(&self) -> &Dataset {
        &self.current
    }

    /// Applies one batch, returning its [`DeltaSummary`]. On error the
    /// accumulated dataset is unchanged (apply is copy-on-write).
    pub fn apply(&mut self, batch: &ClaimBatch) -> Result<DeltaSummary, ModelError> {
        let (next, summary) = self.current.apply_batch(batch)?;
        next.validate_for_discovery()?;
        self.current = next;
        self.batches_applied += 1;
        self.claims_appended += summary.appended_claims;
        Ok(summary)
    }

    /// Number of batches applied since the base.
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// Total claims appended since the base.
    pub fn claims_appended(&self) -> usize {
        self.claims_appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::ids::{ObjectId, SourceId};

    fn base() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o1", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o1", "a1", Value::int(2)).unwrap();
        b.claim("s1", "o1", "a2", Value::int(3)).unwrap();
        b.claim("s2", "o1", "a2", Value::int(3)).unwrap();
        b.build()
    }

    #[test]
    fn apply_batch_appends_with_stable_ids() {
        let d = base();
        let (s1, o1, a1) = (
            d.source_id("s1").unwrap(),
            d.object_id("o1").unwrap(),
            d.attribute_id("a1").unwrap(),
        );
        let mut batch = ClaimBatch::new();
        batch
            .claim("s3", "o1", "a1", Value::int(1))
            .claim("s1", "o2", "a3", Value::int(9));
        let (next, summary) = d.apply_batch(&batch).unwrap();
        // Old ids survive.
        assert_eq!(next.source_id("s1"), Some(s1));
        assert_eq!(next.object_id("o1"), Some(o1));
        assert_eq!(next.attribute_id("a1"), Some(a1));
        // New entities appended after the old ones.
        assert_eq!(next.source_id("s3"), Some(SourceId::new(2)));
        assert_eq!(next.object_id("o2"), Some(ObjectId::new(1)));
        assert_eq!(next.n_claims(), 6);
        assert_eq!(summary.appended_claims, 2);
        assert_eq!(summary.new_sources, 1);
        assert_eq!(summary.new_objects, 1);
        assert_eq!(summary.new_attributes, 1);
        assert!(summary.grew_entities());
        // Dirty attributes: a1 (touched) and the new a3, sorted.
        assert_eq!(
            summary.dirty_attributes,
            vec![a1, next.attribute_id("a3").unwrap()]
        );
        // The original dataset is untouched.
        assert_eq!(d.n_claims(), 4);
    }

    #[test]
    fn applied_batch_matches_from_scratch_build() {
        // Appending a batch must index identically to building the
        // accumulated claim set in one shot (ids included, since the
        // batch names entities in the same first-appearance order).
        let d = base();
        let mut batch = ClaimBatch::new();
        batch
            .claim("s2", "o2", "a1", Value::int(5))
            .claim("s3", "o1", "a2", Value::int(3));
        let (next, _) = d.apply_batch(&batch).unwrap();

        let mut b = DatasetBuilder::new();
        b.claim("s1", "o1", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o1", "a1", Value::int(2)).unwrap();
        b.claim("s1", "o1", "a2", Value::int(3)).unwrap();
        b.claim("s2", "o1", "a2", Value::int(3)).unwrap();
        b.claim("s2", "o2", "a1", Value::int(5)).unwrap();
        b.claim("s3", "o1", "a2", Value::int(3)).unwrap();
        let scratch = b.build();
        assert_eq!(next.n_claims(), scratch.n_claims());
        assert_eq!(next.n_cells(), scratch.n_cells());
        for (c1, c2) in next.claims().iter().zip(scratch.claims()) {
            assert_eq!((c1.source, c1.object, c1.attribute), (c2.source, c2.object, c2.attribute));
            assert_eq!(next.value(c1.value), scratch.value(c2.value));
        }
    }

    #[test]
    fn duplicate_rows_are_noops_and_conflicts_are_errors() {
        let d = base();
        // Exact duplicate of an existing claim: no-op.
        let mut dup = ClaimBatch::new();
        dup.claim("s1", "o1", "a1", Value::int(1));
        let (next, summary) = d.apply_batch(&dup).unwrap();
        assert_eq!(next.n_claims(), 4);
        assert!(summary.is_noop());
        assert!(summary.dirty_attributes.is_empty());

        // Contradicting an existing claim: error, original untouched.
        let mut conflict = ClaimBatch::new();
        conflict.claim("s1", "o1", "a1", Value::int(99));
        let err = d.apply_batch(&conflict).unwrap_err();
        assert!(matches!(err, ModelError::ConflictingClaim { .. }));

        // Within-batch: duplicate collapses, contradiction errors.
        let mut within = ClaimBatch::new();
        within
            .claim("s9", "o1", "a1", Value::int(7))
            .claim("s9", "o1", "a1", Value::int(7));
        let (next, summary) = d.apply_batch(&within).unwrap();
        assert_eq!(summary.appended_claims, 1);
        assert_eq!(next.n_claims(), 5);
        let mut clash = ClaimBatch::new();
        clash
            .claim("s9", "o1", "a1", Value::int(7))
            .claim("s9", "o1", "a1", Value::int(8));
        assert!(d.apply_batch(&clash).is_err());
    }

    #[test]
    fn delta_dataset_validates_and_accumulates() {
        let err = DeltaDataset::new(DatasetBuilder::new().build()).unwrap_err();
        assert!(matches!(err, ModelError::DegenerateDataset { .. }));

        let mut delta = DeltaDataset::new(base()).unwrap();
        let mut batch = ClaimBatch::new();
        batch.claim("s3", "o1", "a1", Value::int(2));
        let summary = delta.apply(&batch).unwrap();
        assert_eq!(summary.appended_claims, 1);
        assert_eq!(delta.batches_applied(), 1);
        assert_eq!(delta.claims_appended(), 1);
        assert_eq!(delta.current().n_claims(), 5);

        // A failing batch leaves the accumulated state untouched.
        let mut bad = ClaimBatch::new();
        bad.claim("s1", "o1", "a1", Value::int(42));
        assert!(delta.apply(&bad).is_err());
        assert_eq!(delta.current().n_claims(), 5);
        assert_eq!(delta.batches_applied(), 1);
    }

    #[test]
    fn claim_of_finds_existing_claims() {
        let d = base();
        let (s1, o1, a2) = (
            d.source_id("s1").unwrap(),
            d.object_id("o1").unwrap(),
            d.attribute_id("a2").unwrap(),
        );
        let c = d.claim_of(s1, o1, a2).unwrap();
        assert_eq!(d.value(c.value), &Value::int(3));
        assert!(d.claim_of(SourceId::new(7), o1, a2).is_none());
    }
}
