//! Error types for dataset construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors raised while building, validating or (de)serializing datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The same source asserted two different values for one cell.
    ConflictingClaim {
        /// Source name as given to the builder.
        source: String,
        /// Object name as given to the builder.
        object: String,
        /// Attribute name as given to the builder.
        attribute: String,
    },
    /// A named entity was not found in the dataset.
    UnknownEntity {
        /// Which entity class ("source", "object", "attribute").
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// The dataset JSON could not be parsed.
    Parse(String),
    /// Ground truth references a cell absent from the dataset and the
    /// caller asked for strict matching.
    TruthForUnknownCell {
        /// Object name.
        object: String,
        /// Attribute name.
        attribute: String,
    },
    /// The dataset cannot support truth discovery: no claims at all, no
    /// objects, or a single source (a lone source is trivially its own
    /// truth — there is no disagreement to resolve). Carries the counts
    /// so the message is self-describing, and — when the degeneracy is
    /// exactly one source — that source's name, so service entry points
    /// can report *which* feed is claiming alone instead of a bare
    /// count.
    DegenerateDataset {
        /// Number of sources in the dataset.
        n_sources: usize,
        /// Number of objects in the dataset.
        n_objects: usize,
        /// Number of claims in the dataset.
        n_claims: usize,
        /// The single source's name when `n_sources == 1`; `None` for
        /// the other degeneracies (nothing to name).
        lone_source: Option<String>,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ConflictingClaim {
                source,
                object,
                attribute,
            } => write!(
                f,
                "source {source:?} asserted two different values for cell \
                 ({object:?}, {attribute:?})"
            ),
            ModelError::UnknownEntity { kind, name } => {
                write!(f, "unknown {kind}: {name:?}")
            }
            ModelError::Parse(msg) => write!(f, "dataset parse error: {msg}"),
            ModelError::TruthForUnknownCell { object, attribute } => write!(
                f,
                "ground truth given for cell ({object:?}, {attribute:?}) \
                 which has no claims in the dataset"
            ),
            ModelError::DegenerateDataset {
                n_sources,
                n_objects,
                n_claims,
                lone_source,
            } => {
                write!(
                    f,
                    "dataset is degenerate for truth discovery: {n_claims} claims \
                     from {n_sources} sources over {n_objects} objects (need at \
                     least one claim, two sources, and one object)"
                )?;
                if let Some(name) = lone_source {
                    write!(f, "; the only claiming source is {name:?}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = ModelError::ConflictingClaim {
            source: "s".into(),
            object: "o".into(),
            attribute: "a".into(),
        };
        assert!(e.to_string().contains("two different values"));
        let e = ModelError::UnknownEntity {
            kind: "source",
            name: "ghost".into(),
        };
        assert!(e.to_string().contains("unknown source"));
        let e = ModelError::Parse("bad token".into());
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&ModelError::Parse(String::new()));
    }
}
