//! The immutable, index-accelerated claim collection and its builder.

use std::collections::HashMap;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::claim::Claim;
use crate::delta::{ClaimBatch, DeltaSummary};
use crate::error::ModelError;
use crate::ids::{AttributeId, Interner, ObjectId, SourceId, ValueId};
use crate::truth::GroundTruth;
use crate::value::Value;
use crate::view::DatasetView;

/// One `(object, attribute)` cell together with the contiguous range of
/// its claims inside the dataset's claim vector.
///
/// Cells are the unit the truth-discovery problem is defined over: each
/// cell has exactly one true value among the (conflicting) claimed ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// The object of this cell.
    pub object: ObjectId,
    /// The attribute of this cell.
    pub attribute: AttributeId,
    claims_start: u32,
    claims_end: u32,
}

impl Cell {
    /// Range of this cell's claims inside [`Dataset::claims`].
    #[inline]
    pub fn claim_range(&self) -> Range<usize> {
        self.claims_start as usize..self.claims_end as usize
    }

    /// Number of claims (sources) covering this cell.
    #[inline]
    pub fn n_claims(&self) -> usize {
        (self.claims_end - self.claims_start) as usize
    }
}

/// An immutable truth-discovery dataset: interned sources, objects,
/// attributes and values, plus claims sorted by `(attribute, object,
/// source)` with per-attribute and per-source indexes.
///
/// Construct with [`DatasetBuilder`]. The sort order is what makes
/// [`DatasetView`] (restriction to an attribute subset) a zero-copy
/// operation: all the cells of one attribute are contiguous.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    sources: Interner,
    objects: Interner,
    attributes: Interner,
    values: Vec<Value>,
    claims: Vec<Claim>,
    cells: Vec<Cell>,
    /// `attribute.index() -> range` of that attribute's cells in `cells`.
    cells_by_attr: Vec<(u32, u32)>,
    /// `source.index() -> indices into claims`, ascending.
    by_source: Vec<Vec<u32>>,
}

impl Dataset {
    /// Number of registered sources (including any without claims).
    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of registered objects.
    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of registered attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of distinct interned values.
    pub fn n_values(&self) -> usize {
        self.values.len()
    }

    /// Total number of claims (observations).
    pub fn n_claims(&self) -> usize {
        self.claims.len()
    }

    /// Number of non-empty `(object, attribute)` cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// All claims, sorted by `(attribute, object, source)`.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// All non-empty cells, sorted by `(attribute, object)`.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The claims of one cell (each from a distinct source).
    pub fn cell_claims(&self, cell: &Cell) -> &[Claim] {
        &self.claims[cell.claim_range()]
    }

    /// The cells of a single attribute, contiguous by construction.
    pub fn cells_of_attribute(&self, attribute: AttributeId) -> &[Cell] {
        match self.cells_by_attr.get(attribute.index()) {
            Some(&(s, e)) => &self.cells[s as usize..e as usize],
            None => &[],
        }
    }

    /// Indices (into [`Dataset::claims`]) of one source's claims.
    pub fn claim_indices_of_source(&self, source: SourceId) -> &[u32] {
        self.by_source
            .get(source.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over one source's claims.
    pub fn claims_of_source(&self, source: SourceId) -> impl Iterator<Item = &Claim> {
        self.claim_indices_of_source(source)
            .iter()
            .map(|&i| &self.claims[i as usize])
    }

    /// Resolves a value id to its payload.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this dataset.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Looks up the id of an already-interned value.
    pub fn value_id(&self, value: &Value) -> Option<ValueId> {
        // The value table is small relative to claims and this lookup is
        // off the hot path (evaluation only), so a linear scan keeps the
        // struct serde-friendly without a skipped index field.
        self.values
            .iter()
            .position(|v| v == value)
            .map(|i| ValueId::new(i as u32))
    }

    /// Name of a source.
    pub fn source_name(&self, id: SourceId) -> &str {
        self.sources.name(id.0).expect("source id out of range")
    }

    /// Name of an object.
    pub fn object_name(&self, id: ObjectId) -> &str {
        self.objects.name(id.0).expect("object id out of range")
    }

    /// Name of an attribute.
    pub fn attribute_name(&self, id: AttributeId) -> &str {
        self.attributes.name(id.0).expect("attribute id out of range")
    }

    /// Id of a named source.
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.sources.get(name).map(SourceId::new)
    }

    /// Id of a named object.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.objects.get(name).map(ObjectId::new)
    }

    /// Id of a named attribute.
    pub fn attribute_id(&self, name: &str) -> Option<AttributeId> {
        self.attributes.get(name).map(AttributeId::new)
    }

    /// All source ids.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.n_sources() as u32).map(SourceId::new)
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.n_objects() as u32).map(ObjectId::new)
    }

    /// All attribute ids.
    pub fn attribute_ids(&self) -> impl Iterator<Item = AttributeId> {
        (0..self.n_attributes() as u32).map(AttributeId::new)
    }

    /// A view spanning every attribute (the un-partitioned dataset).
    pub fn view_all(&self) -> DatasetView<'_> {
        DatasetView::all(self)
    }

    /// A view restricted to `attributes`.
    pub fn view_of(&self, attributes: &[AttributeId]) -> DatasetView<'_> {
        DatasetView::of(self, attributes)
    }

    /// Rejects datasets truth discovery cannot meaningfully run on:
    /// no claims, no objects, or fewer than two sources (a lone source
    /// is trivially its own truth — there is no disagreement to
    /// resolve). Loaders and service entry points should call this
    /// before handing the dataset to a pipeline; the library algorithms
    /// themselves stay permissive (a single-source *view* of a larger
    /// dataset is legitimate).
    pub fn validate_for_discovery(&self) -> Result<(), ModelError> {
        if self.n_claims() == 0 || self.n_objects() == 0 || self.n_sources() < 2 {
            return Err(ModelError::DegenerateDataset {
                n_sources: self.n_sources(),
                n_objects: self.n_objects(),
                n_claims: self.n_claims(),
                // Name the offender when there is exactly one: serving
                // entry points forward it on the wire.
                lone_source: (self.n_sources() == 1)
                    .then(|| self.source_name(SourceId::new(0)).to_string()),
            });
        }
        Ok(())
    }

    /// Rebuilds skipped interner indexes after deserialization.
    pub(crate) fn rebuild_indexes(&mut self) {
        self.sources.rebuild_index();
        self.objects.rebuild_index();
        self.attributes.rebuild_index();
    }

    /// Looks up the claim a source asserted for a cell, if any
    /// (binary search over the `(attribute, object, source)` sort).
    pub fn claim_of(
        &self,
        source: SourceId,
        object: ObjectId,
        attribute: AttributeId,
    ) -> Option<&Claim> {
        self.claims
            .binary_search_by_key(&(attribute, object, source), |c| {
                (c.attribute, c.object, c.source)
            })
            .ok()
            .map(|i| &self.claims[i])
    }

    /// Applies an append-only [`ClaimBatch`], producing the grown
    /// dataset plus a [`DeltaSummary`] of what changed. `self` is
    /// untouched (datasets are immutable); entity ids are **stable** —
    /// existing sources/objects/attributes/values keep their ids, new
    /// ones are appended to the interners in first-appearance order.
    ///
    /// Re-asserting an existing claim with the same value (in the
    /// dataset or within the batch) is a no-op; asserting a *different*
    /// value for an already-claimed `(source, object, attribute)` is
    /// [`ModelError::ConflictingClaim`] — claims are append-only, never
    /// updated in place.
    pub fn apply_batch(&self, batch: &ClaimBatch) -> Result<(Dataset, DeltaSummary), ModelError> {
        let mut sources = self.sources.clone();
        let mut objects = self.objects.clone();
        let mut attributes = self.attributes.clone();
        let mut values = self.values.clone();
        let mut value_index: HashMap<Value, ValueId> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), ValueId::new(i as u32)))
            .collect();
        let (old_sources, old_objects, old_attributes) =
            (sources.len(), objects.len(), attributes.len());

        let mut appended: Vec<Claim> = Vec::with_capacity(batch.len());
        let mut seen: HashMap<(u32, u32, u32), ValueId> = HashMap::new();
        for (source, object, attribute, value) in batch.rows() {
            let s = SourceId::new(sources.intern(source));
            let o = ObjectId::new(objects.intern(object));
            let a = AttributeId::new(attributes.intern(attribute));
            let v = match value_index.get(value) {
                Some(&id) => id,
                None => {
                    let id = ValueId::new(values.len() as u32);
                    values.push(value.clone());
                    value_index.insert(value.clone(), id);
                    id
                }
            };

            let conflict = || ModelError::ConflictingClaim {
                source: source.clone(),
                object: object.clone(),
                attribute: attribute.clone(),
            };
            if let Some(existing) = self.claim_of(s, o, a) {
                if existing.value == v {
                    continue; // duplicate of an existing claim
                }
                return Err(conflict());
            }
            match seen.insert((s.0, o.0, a.0), v) {
                None => appended.push(Claim::new(s, o, a, v)),
                Some(prev) if prev == v => {} // duplicate within the batch
                Some(_) => return Err(conflict()),
            }
        }

        let dirty: Vec<AttributeId> = {
            let mut attrs: Vec<AttributeId> = appended.iter().map(|c| c.attribute).collect();
            attrs.sort_unstable();
            attrs.dedup();
            attrs
        };
        let summary = DeltaSummary {
            dirty_attributes: dirty,
            new_sources: sources.len() - old_sources,
            new_objects: objects.len() - old_objects,
            new_attributes: attributes.len() - old_attributes,
            appended_claims: appended.len(),
        };

        let mut claims = self.claims.clone();
        claims.extend(appended);
        claims.sort_unstable_by_key(|c| (c.attribute, c.object, c.source));
        let (cells, cells_by_attr, by_source) =
            index_claims(&claims, attributes.len(), sources.len());
        let dataset = Dataset {
            sources,
            objects,
            attributes,
            values,
            claims,
            cells,
            cells_by_attr,
            by_source,
        };
        Ok((dataset, summary))
    }

    /// Reassembles a dataset from already-interned parts — the loader
    /// fast path used by the `td-store` binary format, which persists
    /// the interner tables and claim vector directly. Claims are
    /// (re)sorted into the canonical `(attribute, object, source)` order
    /// and fully validated: every id must be in range for its table and
    /// no `(source, object, attribute)` triple may appear twice, so a
    /// hostile or corrupt input can produce an error but never a
    /// malformed dataset.
    pub fn from_interned_parts(
        sources: Interner,
        objects: Interner,
        attributes: Interner,
        values: Vec<Value>,
        mut claims: Vec<Claim>,
    ) -> Result<Dataset, ModelError> {
        let (ns, no, na, nv) = (sources.len(), objects.len(), attributes.len(), values.len());
        for c in &claims {
            let oob = if c.source.index() >= ns {
                Some(("source", c.source.index()))
            } else if c.object.index() >= no {
                Some(("object", c.object.index()))
            } else if c.attribute.index() >= na {
                Some(("attribute", c.attribute.index()))
            } else if c.value.index() >= nv {
                Some(("value", c.value.index()))
            } else {
                None
            };
            if let Some((kind, index)) = oob {
                return Err(ModelError::UnknownEntity {
                    kind,
                    name: format!("#{index}"),
                });
            }
        }
        claims.sort_unstable_by_key(|c| (c.attribute, c.object, c.source));
        if let Some(w) = claims.windows(2).find(|w| {
            (w[0].attribute, w[0].object, w[0].source) == (w[1].attribute, w[1].object, w[1].source)
        }) {
            return Err(ModelError::ConflictingClaim {
                source: sources.name(w[0].source.0).unwrap_or("?").to_owned(),
                object: objects.name(w[0].object.0).unwrap_or("?").to_owned(),
                attribute: attributes.name(w[0].attribute.0).unwrap_or("?").to_owned(),
            });
        }
        let (cells, cells_by_attr, by_source) = index_claims(&claims, na, ns);
        Ok(Dataset {
            sources,
            objects,
            attributes,
            values,
            claims,
            cells,
            cells_by_attr,
            by_source,
        })
    }

    /// A new dataset holding only the claims `keep` accepts, with every
    /// interner table cloned **in full** — ids are global, so a
    /// `SourceId`/`ObjectId`/`AttributeId`/`ValueId` means the same
    /// entity in the subset as in `self`. This is the shard-extraction
    /// primitive behind `td-shard`: a worker's slice keeps the parent
    /// id space, so its partial `TruthResult`s merge into the
    /// coordinator's global result without any id translation.
    ///
    /// The kept claims are re-sorted into the canonical
    /// `(attribute, object, source)` order and re-indexed from scratch
    /// (via [`Dataset::from_interned_parts`]), so a subset serializes
    /// byte-identically no matter how `self`'s claims were ordered.
    pub fn subset_where(&self, mut keep: impl FnMut(&Claim) -> bool) -> Result<Dataset, ModelError> {
        let claims: Vec<Claim> = self.claims.iter().filter(|c| keep(c)).copied().collect();
        Dataset::from_interned_parts(
            self.sources.clone(),
            self.objects.clone(),
            self.attributes.clone(),
            self.values.clone(),
            claims,
        )
    }
}

/// Indexes an `(attribute, object, source)`-sorted claim vector into
/// cells, per-attribute cell ranges, and per-source claim indexes — the
/// shared back half of [`DatasetBuilder::build_with_truth`] and
/// [`Dataset::apply_batch`].
fn index_claims(
    claims: &[Claim],
    n_attributes: usize,
    n_sources: usize,
) -> (Vec<Cell>, Vec<(u32, u32)>, Vec<Vec<u32>>) {
    // Group contiguous runs of equal (attribute, object) into cells.
    let mut cells: Vec<Cell> = Vec::new();
    let mut i = 0usize;
    while i < claims.len() {
        let (a, o) = (claims[i].attribute, claims[i].object);
        let start = i;
        while i < claims.len() && claims[i].attribute == a && claims[i].object == o {
            i += 1;
        }
        cells.push(Cell {
            object: o,
            attribute: a,
            claims_start: start as u32,
            claims_end: i as u32,
        });
    }

    // Per-attribute ranges over the cell vector.
    let mut cells_by_attr = vec![(0u32, 0u32); n_attributes];
    let mut j = 0usize;
    for a in 0..n_attributes {
        let start = j;
        while j < cells.len() && cells[j].attribute.index() == a {
            j += 1;
        }
        cells_by_attr[a] = (start as u32, j as u32);
    }

    // Per-source claim indexes.
    let mut by_source = vec![Vec::new(); n_sources];
    for (idx, c) in claims.iter().enumerate() {
        by_source[c.source.index()].push(idx as u32);
    }
    (cells, cells_by_attr, by_source)
}

/// Incremental [`Dataset`] constructor.
///
/// Accepts claims by entity *name* (convenient, self-interning) or by
/// pre-interned ids (fast path for generators). Duplicate identical
/// claims are ignored; conflicting re-assertions are an error.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    sources: Interner,
    objects: Interner,
    attributes: Interner,
    values: Vec<Value>,
    value_index: HashMap<Value, ValueId>,
    /// `(source, object, attribute) -> value`; detects conflicts.
    claims: HashMap<(u32, u32, u32), ValueId>,
    truth: HashMap<(ObjectId, AttributeId), ValueId>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a source by name.
    pub fn source(&mut self, name: &str) -> SourceId {
        SourceId::new(self.sources.intern(name))
    }

    /// Registers (or looks up) an object by name.
    pub fn object(&mut self, name: &str) -> ObjectId {
        ObjectId::new(self.objects.intern(name))
    }

    /// Registers (or looks up) an attribute by name.
    pub fn attribute(&mut self, name: &str) -> AttributeId {
        AttributeId::new(self.attributes.intern(name))
    }

    /// Interns a value.
    pub fn value(&mut self, value: Value) -> ValueId {
        if let Some(&id) = self.value_index.get(&value) {
            return id;
        }
        let id = ValueId::new(self.values.len() as u32);
        self.values.push(value.clone());
        self.value_index.insert(value, id);
        id
    }

    /// Adds a claim by entity names.
    ///
    /// Returns [`ModelError::ConflictingClaim`] if `source` already
    /// asserted a *different* value for this cell; re-asserting the same
    /// value is a no-op.
    pub fn claim(
        &mut self,
        source: &str,
        object: &str,
        attribute: &str,
        value: Value,
    ) -> Result<(), ModelError> {
        let s = self.source(source);
        let o = self.object(object);
        let a = self.attribute(attribute);
        let v = self.value(value);
        self.claim_ids(s, o, a, v).map_err(|_| ModelError::ConflictingClaim {
            source: source.to_owned(),
            object: object.to_owned(),
            attribute: attribute.to_owned(),
        })
    }

    /// Adds a claim by pre-interned ids (generator fast path).
    ///
    /// The error carries resolved names when available.
    pub fn claim_ids(
        &mut self,
        source: SourceId,
        object: ObjectId,
        attribute: AttributeId,
        value: ValueId,
    ) -> Result<(), ModelError> {
        match self.claims.insert((source.0, object.0, attribute.0), value) {
            None => Ok(()),
            Some(prev) if prev == value => Ok(()),
            Some(prev) => {
                // Restore the original claim before reporting the conflict.
                self.claims.insert((source.0, object.0, attribute.0), prev);
                Err(ModelError::ConflictingClaim {
                    source: self.sources.name(source.0).unwrap_or("?").to_owned(),
                    object: self.objects.name(object.0).unwrap_or("?").to_owned(),
                    attribute: self.attributes.name(attribute.0).unwrap_or("?").to_owned(),
                })
            }
        }
    }

    /// Records the ground-truth value of a cell (by names).
    pub fn truth(&mut self, object: &str, attribute: &str, value: Value) {
        let o = self.object(object);
        let a = self.attribute(attribute);
        let v = self.value(value);
        self.truth.insert((o, a), v);
    }

    /// Records the ground-truth value of a cell (by ids).
    pub fn truth_ids(&mut self, object: ObjectId, attribute: AttributeId, value: ValueId) {
        self.truth.insert((object, attribute), value);
    }

    /// Number of claims accumulated so far.
    pub fn n_claims(&self) -> usize {
        self.claims.len()
    }

    /// Finalizes into a [`Dataset`], discarding any recorded ground truth.
    pub fn build(self) -> Dataset {
        self.build_with_truth().0
    }

    /// Finalizes into a [`Dataset`] plus the recorded [`GroundTruth`].
    pub fn build_with_truth(self) -> (Dataset, GroundTruth) {
        let mut claims: Vec<Claim> = self
            .claims
            .into_iter()
            .map(|((s, o, a), v)| {
                Claim::new(SourceId::new(s), ObjectId::new(o), AttributeId::new(a), v)
            })
            .collect();
        claims.sort_unstable_by_key(|c| (c.attribute, c.object, c.source));
        let (cells, cells_by_attr, by_source) =
            index_claims(&claims, self.attributes.len(), self.sources.len());

        let dataset = Dataset {
            sources: self.sources,
            objects: self.objects,
            attributes: self.attributes,
            values: self.values,
            claims,
            cells,
            cells_by_attr,
            by_source,
        };
        (dataset, GroundTruth::from_map(self.truth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example() -> (Dataset, GroundTruth) {
        // Table 1 of the paper: two topics x three questions, three sources.
        let mut b = DatasetBuilder::new();
        let rows: &[(&str, &str, &str, Value)] = &[
            ("s1", "FB", "Q1", Value::text("Algeria")),
            ("s1", "FB", "Q2", Value::int(2000)),
            ("s1", "FB", "Q3", Value::int(12)),
            ("s2", "FB", "Q1", Value::text("Senegal")),
            ("s2", "FB", "Q2", Value::int(2019)),
            ("s2", "FB", "Q3", Value::int(11)),
            ("s3", "FB", "Q1", Value::text("Algeria")),
            ("s3", "FB", "Q2", Value::int(1994)),
            ("s3", "FB", "Q3", Value::int(12)),
            ("s1", "CS", "Q1", Value::text("Linus Torvalds")),
            ("s1", "CS", "Q2", Value::int(1830)),
            ("s1", "CS", "Q3", Value::int(7)),
            ("s2", "CS", "Q1", Value::text("Bill Gates")),
            ("s2", "CS", "Q2", Value::int(1991)),
            ("s2", "CS", "Q3", Value::int(8)),
            ("s3", "CS", "Q1", Value::text("Steve Jobs")),
            ("s3", "CS", "Q2", Value::int(1991)),
            ("s3", "CS", "Q3", Value::int(10)),
        ];
        for (s, o, a, v) in rows {
            b.claim(s, o, a, v.clone()).unwrap();
        }
        b.truth("FB", "Q1", Value::text("Algeria"));
        b.truth("FB", "Q2", Value::int(2019));
        b.truth("FB", "Q3", Value::int(11));
        b.truth("CS", "Q1", Value::text("Linus Torvalds"));
        b.truth("CS", "Q2", Value::int(1991));
        b.truth("CS", "Q3", Value::int(10));
        b.build_with_truth()
    }

    #[test]
    fn validation_accepts_the_running_example() {
        let (d, _) = running_example();
        assert!(d.validate_for_discovery().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_datasets() {
        // Empty: no claims, no sources, no objects.
        let empty = DatasetBuilder::new().build();
        let err = empty.validate_for_discovery().unwrap_err();
        assert_eq!(
            err,
            ModelError::DegenerateDataset {
                n_sources: 0,
                n_objects: 0,
                n_claims: 0,
                lone_source: None,
            }
        );
        assert!(err.to_string().contains("degenerate"), "{err}");

        // A single source has nothing to disagree with — and the error
        // names it, so a service can report which feed claims alone.
        let mut b = DatasetBuilder::new();
        b.claim("lone", "o", "a", Value::int(1)).unwrap();
        let single = b.build();
        let err = single.validate_for_discovery().unwrap_err();
        assert!(matches!(
            &err,
            ModelError::DegenerateDataset { n_sources: 1, lone_source: Some(name), .. }
                if name == "lone"
        ));
        assert!(err.to_string().contains("\"lone\""), "{err}");
    }

    #[test]
    fn builder_counts_entities() {
        let (d, t) = running_example();
        assert_eq!(d.n_sources(), 3);
        assert_eq!(d.n_objects(), 2);
        assert_eq!(d.n_attributes(), 3);
        assert_eq!(d.n_claims(), 18);
        assert_eq!(d.n_cells(), 6);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn claims_are_sorted_by_attribute_object_source() {
        let (d, _) = running_example();
        let keys: Vec<_> = d
            .claims()
            .iter()
            .map(|c| (c.attribute, c.object, c.source))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn cells_partition_the_claims() {
        let (d, _) = running_example();
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for cell in d.cells() {
            let r = cell.claim_range();
            assert_eq!(r.start, prev_end, "cells must tile the claim vector");
            prev_end = r.end;
            covered += r.len();
            for c in d.cell_claims(cell) {
                assert_eq!(c.cell(), (cell.object, cell.attribute));
            }
        }
        assert_eq!(covered, d.n_claims());
    }

    #[test]
    fn cells_of_attribute_are_complete() {
        let (d, _) = running_example();
        for a in d.attribute_ids() {
            let cells = d.cells_of_attribute(a);
            assert_eq!(cells.len(), 2, "each question asked about both topics");
            for c in cells {
                assert_eq!(c.attribute, a);
            }
        }
    }

    #[test]
    fn by_source_index_is_consistent() {
        let (d, _) = running_example();
        for s in d.source_ids() {
            let claims: Vec<_> = d.claims_of_source(s).collect();
            assert_eq!(claims.len(), 6);
            assert!(claims.iter().all(|c| c.source == s));
        }
    }

    #[test]
    fn duplicate_identical_claim_is_noop() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a", Value::int(1)).unwrap();
        b.claim("s", "o", "a", Value::int(1)).unwrap();
        assert_eq!(b.n_claims(), 1);
    }

    #[test]
    fn conflicting_claim_is_error_and_preserves_original() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a", Value::int(1)).unwrap();
        let err = b.claim("s", "o", "a", Value::int(2)).unwrap_err();
        assert!(matches!(err, ModelError::ConflictingClaim { .. }));
        let d = b.build();
        assert_eq!(d.n_claims(), 1);
        let cell = &d.cells()[0];
        let v = d.cell_claims(cell)[0].value;
        assert_eq!(d.value(v), &Value::int(1));
    }

    #[test]
    fn name_id_roundtrip() {
        let (d, _) = running_example();
        let s = d.source_id("s2").unwrap();
        assert_eq!(d.source_name(s), "s2");
        let o = d.object_id("CS").unwrap();
        assert_eq!(d.object_name(o), "CS");
        let a = d.attribute_id("Q3").unwrap();
        assert_eq!(d.attribute_name(a), "Q3");
        assert!(d.source_id("nope").is_none());
    }

    #[test]
    fn value_id_lookup() {
        let (d, _) = running_example();
        let id = d.value_id(&Value::text("Algeria")).unwrap();
        assert_eq!(d.value(id), &Value::text("Algeria"));
        assert!(d.value_id(&Value::text("Morocco")).is_none());
    }

    #[test]
    fn truth_values_are_interned_even_if_unclaimed() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a", Value::int(1)).unwrap();
        b.truth("o", "a", Value::int(42)); // nobody claimed 42
        let (d, t) = b.build_with_truth();
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        let v = t.get(o, a).unwrap();
        assert_eq!(d.value(v), &Value::int(42));
    }

    #[test]
    fn empty_dataset_builds() {
        let d = DatasetBuilder::new().build();
        assert_eq!(d.n_claims(), 0);
        assert_eq!(d.n_cells(), 0);
        assert!(d.cells().is_empty());
    }

    #[test]
    fn subset_where_keeps_global_ids_and_canonical_order() {
        let (d, _) = running_example();
        let fb = d.object_id("FB").unwrap();
        let sub = d.subset_where(|c| c.object == fb).unwrap();
        // Interners are cloned in full: same entity tables, same ids.
        assert_eq!(sub.n_sources(), d.n_sources());
        assert_eq!(sub.n_objects(), d.n_objects());
        assert_eq!(sub.n_attributes(), d.n_attributes());
        assert_eq!(sub.n_values(), d.n_values());
        assert_eq!(sub.object_id("FB"), Some(fb));
        // Only FB claims survive, still canonically sorted.
        assert_eq!(sub.n_claims(), 9);
        assert!(sub.claims().iter().all(|c| c.object == fb));
        let keys: Vec<_> = sub
            .claims()
            .iter()
            .map(|c| (c.attribute, c.object, c.source))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Claims reference the parent's value table verbatim.
        for (c, pc) in sub.claims().iter().zip(
            d.claims().iter().filter(|c| c.object == fb),
        ) {
            assert_eq!(c, pc);
        }
        // An empty filter still builds (an empty shard is legal).
        let none = d.subset_where(|_| false).unwrap();
        assert_eq!(none.n_claims(), 0);
        assert_eq!(none.n_sources(), d.n_sources());
    }

    #[test]
    fn sources_without_claims_are_retained() {
        let mut b = DatasetBuilder::new();
        b.source("idle");
        b.claim("busy", "o", "a", Value::int(1)).unwrap();
        let d = b.build();
        assert_eq!(d.n_sources(), 2);
        let idle = d.source_id("idle").unwrap();
        assert_eq!(d.claims_of_source(idle).count(), 0);
    }
}
