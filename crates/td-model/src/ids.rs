//! Dense integer identifiers and string interning.
//!
//! All entities of a [`crate::Dataset`] — sources, objects, attributes and
//! values — are identified by dense `u32` newtypes allocated in insertion
//! order. Dense ids let every algorithm replace hash maps with flat
//! `Vec`-indexed state (source trust vectors, per-cell confidence tables),
//! which is the single most important layout decision for performance on
//! datasets with tens of thousands of observations.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index, suitable for `Vec` indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a data source (a website, a crowd worker, a student…).
    SourceId,
    "s"
);
define_id!(
    /// Identifier of a real-world object (entity) described by the data.
    ObjectId,
    "o"
);
define_id!(
    /// Identifier of a data attribute (a property / question about objects).
    AttributeId,
    "a"
);
define_id!(
    /// Identifier of an interned claim value.
    ValueId,
    "v"
);

/// An insertion-ordered string interner mapping names to dense `u32` ids.
///
/// Used by [`crate::DatasetBuilder`] for source, object and attribute
/// names. Lookup is `O(1)` amortized; `name(id)` is a direct `Vec` index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense id (existing or freshly
    /// allocated).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow: more than 2^32 names");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Returns the id of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Returns the name behind `id`, or `None` if out of range.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the reverse index (needed after deserialization, where the
    /// `index` field is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.intern("beta"), b);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_insertion_ordered() {
        let mut i = Interner::new();
        for (expect, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(i.intern(name), expect as u32);
        }
        assert_eq!(i.name(1), Some("y"));
        assert_eq!(i.get("z"), Some(2));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.name(99), None);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut i = Interner::new();
        i.intern("p");
        i.intern("q");
        let json = serde_json::to_string(&i).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("p"), None, "index is skipped by serde");
        back.rebuild_index();
        assert_eq!(back.get("p"), Some(0));
        assert_eq!(back.get("q"), Some(1));
    }

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(SourceId::new(3).to_string(), "s3");
        assert_eq!(ObjectId::new(0).to_string(), "o0");
        assert_eq!(AttributeId::new(7).to_string(), "a7");
        assert_eq!(ValueId::new(12).to_string(), "v12");
    }

    #[test]
    fn id_index_roundtrip() {
        let id = AttributeId::from(5u32);
        assert_eq!(id.index(), 5);
        assert_eq!(AttributeId::new(5), id);
    }
}
