//! Graded similarity between claim values.
//!
//! Two of the paper's base algorithms need more than exact equality:
//! TruthFinder [Yin et al. 2008] lets similar values *imply* (support)
//! each other, and AccuSim [Dong et al. 2009] extends Accu the same way.
//! [`ValueSimilarity`] provides the `sim(v1, v2) ∈ [0, 1]` measure they
//! consume: normalized Levenshtein for text, relative closeness for
//! numbers, identity for booleans, `0` across kinds.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Tuning knobs for [`ValueSimilarity`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Scale of numeric closeness: similarity is
    /// `max(0, 1 - |a-b| / (numeric_scale * max(|a|, |b|, 1)))`.
    /// `1.0` means values twice apart (relative) have similarity 0.
    pub numeric_scale: f64,
    /// If `false`, text values are only similar when equal (similarity is
    /// then 1 or 0). Saves the Levenshtein cost on large categorical
    /// domains where partial matches are meaningless.
    pub fuzzy_text: bool,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        Self {
            numeric_scale: 1.0,
            fuzzy_text: true,
        }
    }
}

/// Stateless similarity evaluator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSimilarity {
    config: SimilarityConfig,
}

impl ValueSimilarity {
    /// Evaluator with the given configuration.
    pub fn new(config: SimilarityConfig) -> Self {
        Self { config }
    }

    /// Similarity in `[0, 1]`; `1` iff the values are equal (up to float
    /// canonicalization), `0` across kinds.
    pub fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a == b {
            return 1.0;
        }
        match (a, b) {
            (Value::Text(x), Value::Text(y))
                if self.config.fuzzy_text => {
                    normalized_levenshtein(x, y)
                }
            (Value::Int(x), Value::Int(y)) => self.numeric_sim(*x as f64, *y as f64),
            (Value::Float(x), Value::Float(y)) => self.numeric_sim(*x, *y),
            // Unequal booleans, or values of different kinds.
            _ => 0.0,
        }
    }

    fn numeric_sim(&self, x: f64, y: f64) -> f64 {
        let scale = self.config.numeric_scale * x.abs().max(y.abs()).max(1.0);
        (1.0 - (x - y).abs() / scale).max(0.0)
    }
}

/// Levenshtein edit distance between two strings, over Unicode scalar
/// values, computed with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity normalized to `[0, 1]`:
/// `1 - distance / max(len_a, len_b)`; `1.0` for two empty strings.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("algeria", "nigeria"), levenshtein("nigeria", "algeria"));
    }

    #[test]
    fn levenshtein_handles_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let s = normalized_levenshtein("Linus Torvalds", "Linux Torvalds");
        assert!(s > 0.9 && s < 1.0);
    }

    #[test]
    fn identical_values_have_similarity_one() {
        let vs = ValueSimilarity::default();
        assert_eq!(vs.sim(&Value::text("x"), &Value::text("x")), 1.0);
        assert_eq!(vs.sim(&Value::int(5), &Value::int(5)), 1.0);
        assert_eq!(vs.sim(&Value::float(2.5), &Value::float(2.5)), 1.0);
        assert_eq!(vs.sim(&Value::bool(true), &Value::bool(true)), 1.0);
    }

    #[test]
    fn cross_kind_similarity_is_zero() {
        let vs = ValueSimilarity::default();
        assert_eq!(vs.sim(&Value::int(1), &Value::text("1")), 0.0);
        assert_eq!(vs.sim(&Value::bool(true), &Value::int(1)), 0.0);
    }

    #[test]
    fn close_numbers_are_similar() {
        let vs = ValueSimilarity::default();
        let close = vs.sim(&Value::int(1991), &Value::int(1994));
        let far = vs.sim(&Value::int(1991), &Value::int(1830));
        assert!(close > 0.99, "close years nearly identical: {close}");
        assert!(far < close);
        assert!((0.0..=1.0).contains(&far));
    }

    #[test]
    fn numeric_scale_controls_strictness() {
        let strict = ValueSimilarity::new(SimilarityConfig {
            numeric_scale: 0.01,
            fuzzy_text: true,
        });
        let lax = ValueSimilarity::default();
        let a = Value::int(100);
        let b = Value::int(105);
        assert!(strict.sim(&a, &b) < lax.sim(&a, &b));
    }

    #[test]
    fn fuzzy_text_can_be_disabled() {
        let exact = ValueSimilarity::new(SimilarityConfig {
            numeric_scale: 1.0,
            fuzzy_text: false,
        });
        assert_eq!(exact.sim(&Value::text("abc"), &Value::text("abd")), 0.0);
        assert_eq!(exact.sim(&Value::text("abc"), &Value::text("abc")), 1.0);
    }

    #[test]
    fn unequal_booleans_are_dissimilar() {
        let vs = ValueSimilarity::default();
        assert_eq!(vs.sim(&Value::bool(true), &Value::bool(false)), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let vs = ValueSimilarity::default();
        let pairs = [
            (Value::text("Algeria"), Value::text("Nigeria")),
            (Value::int(3), Value::int(9)),
            (Value::float(0.5), Value::float(0.7)),
        ];
        for (a, b) in &pairs {
            assert!((vs.sim(a, b) - vs.sim(b, a)).abs() < 1e-12);
        }
    }
}
