//! Shard-scaling sweep: wall-clock of the sharded backend at 1/2/4/8
//! workers against the single-process run, on a large DS1-shaped
//! synthetic workload (default ≈10M observations).
//!
//! Prints one JSON document to stdout; `scripts/bench.sh` folds it into
//! `BENCH_tdac.json` under `"shard_scaling"`. The numbers are **honest
//! wall-clock on this machine** — the document records the core count,
//! because process-level sharding cannot beat physics: on a single-core
//! box 8 workers time-slice one CPU and the sweep mostly measures the
//! slice/spawn/serialize overhead, not the speedup a real 8-core host
//! would see (see docs/SHARDING.md).
//!
//! Every sharded outcome is fingerprint-checked against the in-process
//! run before its time is reported — a fast wrong answer is not a
//! benchmark.
//!
//! Env knobs: `TDAC_SHARD_OBJECTS` (default 166667 objects ≈ 10M
//! observations at DS1's 6 attributes × 10 sources), `TDAC_SHARD_COUNTS`
//! (default `1,2,4,8`).

use td_algorithms::MajorityVote;
use td_shard::ShardRunner;
use td_store::DatasetStore;
use td_verify::OutcomeFingerprint;
use tdac_core::{
    ExecutionBackend, Parallelism, RetryPolicy, ShardPlan, ShardStrategy, Tdac, TdacConfig,
};

fn main() {
    // Fork-of-self worker arm, same contract as `tdc worker`.
    if std::env::args().nth(1).as_deref() == Some("worker") {
        std::process::exit(td_shard::worker_main());
    }

    let n_objects: usize = std::env::var("TDAC_SHARD_OBJECTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(166_667);
    let shard_counts: Vec<usize> = std::env::var("TDAC_SHARD_COUNTS")
        .ok()
        .map(|v| v.split(',').filter_map(|n| n.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("# generating DS1 scaled to {n_objects} objects…");
    let synth = datagen::generate_synthetic(&datagen::SyntheticConfig::ds1().scaled(n_objects));
    let observations = synth.dataset.n_claims();
    let store = DatasetStore::new(synth.dataset);

    let config = TdacConfig {
        backend: ExecutionBackend::in_process(Parallelism::Threads(1)),
        ..TdacConfig::default()
    };

    eprintln!("# in-process baseline ({observations} observations)…");
    let start = std::time::Instant::now();
    let baseline = Tdac::new(config.clone())
        .run_store(&MajorityVote, &store)
        .expect("baseline run");
    let in_process_ms = start.elapsed().as_secs_f64() * 1e3;
    let reference = OutcomeFingerprint::of(&baseline);

    // Object hashing is the scale-out strategy: worker count is not
    // capped by the attribute-group count (DS1 partitions into ~4
    // groups, so attribute dealing tops out at 4 busy workers).
    let strategy = ShardStrategy::HashByObject;
    let mut sharded_ms: Vec<(usize, f64)> = Vec::new();
    for &shards in &shard_counts {
        eprintln!("# sharded run: {shards} worker(s)…");
        let mut plan = ShardPlan::new(strategy, shards);
        plan.worker_parallelism = Parallelism::Threads(1);
        // Default worker command = this very binary re-run as `worker`
        // (the argv arm above), so the sweep is self-contained.
        let runner = ShardRunner::new(TdacConfig {
            backend: ExecutionBackend::Sharded(plan),
            ..config.clone()
        })
        .expect("sharded config");
        let start = std::time::Instant::now();
        let outcome = runner
            .run_store("MajorityVote", &store)
            .unwrap_or_else(|e| panic!("sharded run with {shards} workers failed: {e}"));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(diff) = reference.diff(&OutcomeFingerprint::of(&outcome)) {
            panic!("sharded outcome at {shards} workers diverged from in-process:\n{diff}");
        }
        sharded_ms.push((shards, ms));
    }

    // Retry-supervisor overhead on the clean path: the same 2-worker
    // run with the fault supervisor armed (3 attempts) — no fault ever
    // fires, so the delta is the pure cost of per-shard lifecycle
    // bookkeeping, attempt tagging, and end-of-run partial folding
    // versus the fail-fast sweep measurement above.
    let retry_workers = 2usize;
    eprintln!("# retry-armed run: {retry_workers} worker(s), 3 attempts, no faults…");
    let mut plan = ShardPlan::new(strategy, retry_workers);
    plan.worker_parallelism = Parallelism::Threads(1);
    plan.retry = RetryPolicy::with_attempts(3);
    let runner = ShardRunner::new(TdacConfig {
        backend: ExecutionBackend::Sharded(plan),
        ..config.clone()
    })
    .expect("retry-armed config");
    let start = std::time::Instant::now();
    let outcome = runner
        .run_store("MajorityVote", &store)
        .expect("retry-armed run");
    let armed_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(diff) = reference.diff(&OutcomeFingerprint::of(&outcome)) {
        panic!("retry-armed outcome diverged from in-process:\n{diff}");
    }
    assert!(
        outcome.degradation.is_none(),
        "a clean retry-armed run must not be flagged"
    );
    let fail_fast_ms = sharded_ms
        .iter()
        .find(|(s, _)| *s == retry_workers)
        .map(|(_, ms)| *ms)
        .unwrap_or(armed_ms);

    let entries: Vec<String> = sharded_ms
        .iter()
        .map(|(s, ms)| format!("\"{s}\": {ms:.1}"))
        .collect();
    let speedups: Vec<String> = sharded_ms
        .iter()
        .map(|(s, ms)| format!("\"{s}\": {:.2}", in_process_ms / ms))
        .collect();
    println!(
        "{{\n  \"observations\": {observations},\n  \"cores\": {cores},\n  \
         \"strategy\": \"hash-object\",\n  \"worker_parallelism\": 1,\n  \
         \"in_process_ms\": {in_process_ms:.1},\n  \
         \"sharded_ms\": {{{}}},\n  \"speedup\": {{{}}},\n  \
         \"retry_overhead\": {{\"workers\": {retry_workers}, \
         \"fail_fast_ms\": {fail_fast_ms:.1}, \"armed_ms\": {armed_ms:.1}, \
         \"ratio\": {:.3}}}\n}}",
        entries.join(", "),
        speedups.join(", "),
        armed_ms / fail_fast_ms
    );
}
