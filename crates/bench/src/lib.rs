//! Shared fixtures for the Criterion benches.
//!
//! The benches regenerate the *shape* of every running-time column in the
//! paper (Tables 4, 6, 7, 9): who is fast, who is slow, and by roughly
//! what factor — absolute seconds differ from the authors' Python on a
//! laptop, as documented in EXPERIMENTS.md.

use datagen::{generate_exam, generate_synthetic, ExamConfig, SyntheticConfig, SyntheticDataset};
use td_model::{Dataset, GroundTruth};

/// DS1 scaled for per-iteration benches (big enough to dominate setup).
pub fn ds1_bench(n_objects: usize) -> SyntheticDataset {
    generate_synthetic(&SyntheticConfig::ds1().scaled(n_objects))
}

/// DS1 tiny, for the brute-force comparison (Bell(6) = 203 partitions).
pub fn ds1_tiny() -> SyntheticDataset {
    generate_synthetic(&SyntheticConfig::ds1().scaled(25))
}

/// An Exam slice for the semi-synthetic timing shape.
pub fn exam_bench(n_attributes: usize, n_students: usize) -> (Dataset, GroundTruth) {
    let mut cfg = ExamConfig::new(n_attributes, 100);
    cfg.n_students = n_students;
    generate_exam(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(ds1_bench(10).dataset.n_objects(), 10);
        assert_eq!(ds1_tiny().dataset.n_attributes(), 6);
        let (d, _) = exam_bench(32, 40);
        assert_eq!(d.n_attributes(), 32);
    }
}
