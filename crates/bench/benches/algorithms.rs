//! Bench: every truth-discovery algorithm on DS1 — the Time(s) column of
//! the paper's Table 4 (the standard-algorithm rows).
//!
//! Expected shape (paper): MajorityVote ≪ TruthFinder ≈ DEPEN < Accu ≈
//! AccuSim (the dependence machinery dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use td_algorithms::registry::all_algorithms;
use tdac_bench::ds1_bench;

fn bench_algorithms(c: &mut Criterion) {
    let data = ds1_bench(150);
    let view = data.dataset.view_all();
    let mut group = c.benchmark_group("table4_time/standard_algorithms");
    group.sample_size(10);
    for algo in all_algorithms() {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &view, |b, v| {
            b.iter(|| black_box(algo.discover(v)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
