//! Bench: scalability sweeps the paper's conclusion worries about —
//! running time as objects and sources grow (the "optimization of the
//! running time … when the number of attributes, objects and sources is
//! very large" perspective), including the rayon-parallel
//! AccuGenPartition as the paper's suggested parallelization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, MajorityVote, TruthDiscovery};
use tdac_core::{Tdac, TdacConfig};

fn bench_objects_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/tdac_vs_objects");
    group.sample_size(10);
    for n_objects in [50usize, 100, 200, 400] {
        let data = generate_synthetic(&SyntheticConfig::ds1().scaled(n_objects));
        group.throughput(Throughput::Elements(data.dataset.n_claims() as u64));
        let tdac = Tdac::new(TdacConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(n_objects),
            &data.dataset,
            |b, d| {
                b.iter(|| black_box(tdac.run(&MajorityVote, d).expect("run")));
            },
        );
    }
    group.finish();
}

fn bench_sources_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/accu_vs_sources");
    group.sample_size(10);
    for n_sources in [10usize, 20, 40] {
        let mut cfg = SyntheticConfig::ds1().scaled(100);
        cfg.n_sources = n_sources;
        let data = generate_synthetic(&cfg);
        let view = data.dataset.view_all();
        let accu = Accu::default();
        group.bench_with_input(BenchmarkId::from_parameter(n_sources), &view, |b, v| {
            b.iter(|| black_box(accu.discover(v)));
        });
    }
    group.finish();
}

fn bench_attribute_sweep(c: &mut Criterion) {
    // The k ∈ [2, |A|-1] sweep is TD-AC's own scaling risk: quadratic-ish
    // in |A|.
    let mut group = c.benchmark_group("scalability/tdac_vs_attributes");
    group.sample_size(10);
    for n_attrs in [6usize, 12, 24] {
        let mut cfg = SyntheticConfig::ds1().scaled(60);
        cfg.n_attributes = n_attrs;
        // Planted partition: consecutive pairs.
        cfg.partition = (0..n_attrs).step_by(2).map(|a| vec![a, a + 1]).collect();
        let data = generate_synthetic(&cfg);
        let tdac = Tdac::new(TdacConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(n_attrs),
            &data.dataset,
            |b, d| {
                b.iter(|| black_box(tdac.run(&MajorityVote, d).expect("run")));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_objects_sweep,
    bench_sources_sweep,
    bench_attribute_sweep
);
criterion_main!(benches);
