//! Bench: td-serve query throughput over loopback TCP, with and
//! without chaos injection.
//!
//! `query_clean` round-trips `TruthQuery::All` against a server whose
//! session ran to completion; `query_chaos` does the same against a
//! generation produced under injected chaos (a `ChaosHook` stall plus a
//! starved request deadline on the ingest that built it). The serving
//! contract under chaos is *graceful degradation*: the server answers
//! at full speed from its best-so-far snapshot and every answer carries
//! the degradation flag — no panics, no unflagged partial answers.
//!
//! `scripts/bench.sh` folds each `serve/*` median into
//! `BENCH_tdac.json` under `serve_throughput` as requests/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use td_algorithms::algorithm_by_name;
use td_model::{Dataset, Value};
use td_serve::{Client, ResponseBody, ServeConfig, Server, WireClaim};
use td_verify::ChaosHook;
use tdac_bench::exam_bench;
use tdac_core::{RepartitionPolicy, TdacConfig, TdacSession, TruthQuery};

/// A fresh-object claim batch over existing sources/attributes, so the
/// chaos ingest below is consistent with the exam base.
fn fresh_object_batch(dataset: &Dataset) -> Vec<WireClaim> {
    let sources: Vec<String> = (0..3)
        .map(|s| dataset.source_name(td_model::SourceId::new(s)).to_string())
        .collect();
    let attrs: Vec<String> = (0..4)
        .map(|a| dataset.attribute_name(td_model::AttributeId::new(a)).to_string())
        .collect();
    let mut wire = Vec::new();
    for (si, source) in sources.iter().enumerate() {
        for (ai, attr) in attrs.iter().enumerate() {
            wire.push(WireClaim {
                source: source.clone(),
                object: "bench-chaos-object".to_string(),
                attribute: attr.clone(),
                value: Value::int((si * 100 + ai) as i64),
            });
        }
    }
    wire
}

fn serve(config: TdacConfig, dataset: Dataset) -> (Server, Client) {
    let session = TdacSession::start(
        algorithm_by_name("majorityvote").expect("known algorithm"),
        config,
        RepartitionPolicy::Always,
        dataset,
    )
    .expect("session starts");
    let server = Server::bind(
        "127.0.0.1:0",
        session,
        ServeConfig {
            max_inflight: 8,
            workers: 2,
            default_deadline_ms: None,
        },
    )
    .expect("server binds");
    let client = Client::connect(server.local_addr()).expect("client connects");
    (server, client)
}

fn bench_serve(c: &mut Criterion) {
    let (exam, _) = exam_bench(62, 120);
    let mut group = c.benchmark_group("serve/exam62");
    group.sample_size(20);

    // ── Clean: queries against a fully-converged generation ──
    let (mut server, mut client) = serve(TdacConfig::default(), exam.clone());
    group.bench_function("query_clean", |b| {
        b.iter(|| {
            let resp = client
                .query(TruthQuery::All, Some(30_000))
                .expect("query round-trips");
            let ResponseBody::Query(q) = &resp.body else {
                panic!("clean query failed: {:?}", resp.body);
            };
            assert!(q.degradation.is_none(), "clean generation is complete");
            black_box(resp)
        });
    });
    server.shutdown();

    // ── Chaos: the served generation was built under an injected stall
    // and a starved deadline, so it is degraded-but-published. Queries
    // must keep answering at speed, every answer flagged. (The sweep's
    // first hit is the session's start pass; hit 2 is the ingest's
    // re-sweep under RepartitionPolicy::Always.)
    let hook = ChaosHook::delays_at("k_sweep", 2, Duration::from_millis(200));
    let config = TdacConfig::builder()
        .observer(hook.observer())
        .build()
        .expect("valid config");
    let (mut server, mut client) = serve(config, exam.clone());
    let resp = client
        .ingest(fresh_object_batch(&exam), Some(50))
        .expect("ingest round-trips");
    let ResponseBody::Ingest(ack) = resp.body else {
        panic!("chaos ingest must ack flagged, got {:?}", resp.body);
    };
    assert!(hook.fired(), "the chaos stall actually ran");
    assert!(
        ack.degradation.is_some(),
        "a 200ms stall under a 50ms deadline must degrade the generation"
    );
    group.bench_function("query_chaos", |b| {
        b.iter(|| {
            let resp = client
                .query(TruthQuery::All, Some(30_000))
                .expect("query round-trips");
            let ResponseBody::Query(q) = &resp.body else {
                panic!("chaos query failed: {:?}", resp.body);
            };
            assert!(
                q.degradation.is_some(),
                "answers from the degraded generation must be flagged"
            );
            black_box(resp)
        });
    });
    server.shutdown();

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
