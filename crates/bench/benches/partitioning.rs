//! Bench: TD-AC vs the AccuGenPartition brute force — the headline
//! running-time comparison of the paper (Table 4's Time column shows
//! AccuGenPartition ≈ 200× the standard algorithms; TD-AC stays within a
//! small factor of one base run).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use td_algorithms::MajorityVote;
use tdac_bench::ds1_tiny;
use tdac_core::{AccuGenPartition, Parallelism, Tdac, TdacConfig, Weighting};

fn bench_partitioning(c: &mut Criterion) {
    let data = ds1_tiny();
    let base = MajorityVote;
    let mut group = c.benchmark_group("table4_time/partitioning_strategies");
    group.sample_size(10);

    group.bench_function("base_alone", |b| {
        use td_algorithms::TruthDiscovery;
        let view = data.dataset.view_all();
        b.iter(|| black_box(base.discover(&view)));
    });

    group.bench_function("tdac", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        b.iter(|| black_box(tdac.run(&base, &data.dataset).expect("run")));
    });

    group.bench_function("accugen_avg_parallel", |b| {
        let brute = AccuGenPartition::default();
        b.iter(|| {
            black_box(
                brute
                    .run(&base, &data.dataset, Weighting::Avg)
                    .expect("run"),
            )
        });
    });

    group.bench_function("accugen_avg_sequential", |b| {
        let brute = AccuGenPartition {
            parallelism: Parallelism::Threads(1),
            ..Default::default()
        };
        b.iter(|| {
            black_box(
                brute
                    .run(&base, &data.dataset, Weighting::Avg)
                    .expect("run"),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
