//! Bench: the clustering substrate on truth-vector-shaped binary
//! matrices — the ablation bench for DESIGN.md's "k-means vs. PAM vs.
//! hierarchical" and "silhouette sweep cost" design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clustering::{
    select_k, silhouette_paper, Agglomerative, BitMatrix, DistanceOptions, Hamming, KMeans,
    KMeansConfig, KernelPolicy, Linkage, Matrix, Pam, PamConfig,
};

/// A binary matrix with `rows` truth vectors of `cols` dimensions and a
/// planted 3-group structure.
fn planted(rows: usize, cols: usize) -> Matrix {
    let mut data = Vec::with_capacity(rows);
    for r in 0..rows {
        let group = r % 3;
        let row: Vec<f64> = (0..cols)
            .map(|c| {
                let on = (c / (cols / 3).max(1)).min(2) == group;
                // Mostly-clean group pattern with deterministic noise.
                if (r * 31 + c * 17) % 11 == 0 {
                    f64::from(!on as u8 as u32)
                } else {
                    f64::from(on as u8 as u32)
                }
            })
            .collect();
        data.push(row);
    }
    Matrix::from_rows(&data)
}

fn bench_clusterers(c: &mut Criterion) {
    let data = planted(62, 240);
    let mut group = c.benchmark_group("ablation/clusterers_62x240");
    group.sample_size(10);

    group.bench_function("kmeans_k3_10restarts", |b| {
        let km = KMeans::new(KMeansConfig::with_k(3));
        b.iter(|| black_box(km.fit(&data).expect("fit")));
    });
    group.bench_function("pam_k3", |b| {
        let pam = Pam::new(PamConfig::with_k(3));
        b.iter(|| black_box(pam.fit(&data, &Hamming).expect("fit")));
    });
    group.bench_function("hierarchical_avg_k3", |b| {
        let agg = Agglomerative::new(Linkage::Average);
        b.iter(|| black_box(agg.fit(&data, 3, &Hamming).expect("fit")));
    });
    group.bench_function("silhouette_k3", |b| {
        let asg = KMeans::new(KMeansConfig::with_k(3))
            .fit(&data)
            .expect("fit")
            .assignments;
        b.iter(|| black_box(silhouette_paper(&data, &asg, &Hamming)));
    });
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/silhouette_sweep");
    group.sample_size(10);
    for n_attrs in [6usize, 32, 62] {
        let data = planted(n_attrs, 240);
        group.bench_with_input(BenchmarkId::from_parameter(n_attrs), &data, |b, d| {
            b.iter(|| {
                black_box(
                    select_k(d, 2..=d.n_rows() - 1, &Hamming, KMeansConfig::with_k(0))
                        .expect("sweep"),
                )
            });
        });
    }
    group.finish();
}

fn bench_hamming_kernels(c: &mut Criterion) {
    // The tentpole comparison: the dense f64 reference loop vs the
    // bit-packed XOR+popcount kernel on the same pairwise Hamming
    // matrix. Wide truth-vector-shaped inputs (≥ 256 object-source
    // columns) are where packing pays; scripts/bench.sh folds the
    // dense/packed pair into BENCH_tdac.json with the speedup.
    for (rows, cols) in [(64usize, 256usize), (64, 1024)] {
        let data = planted(rows, cols);
        let packed = BitMatrix::pack(&data).expect("planted matrices are binary");
        let mut group = c.benchmark_group(format!("kernel/pairwise_hamming_{rows}x{cols}"));
        group.sample_size(20);
        group.bench_function("dense", |b| {
            let opts = DistanceOptions::builder().kernel(KernelPolicy::Dense).build();
            b.iter(|| black_box(opts.pairwise(&data, &Hamming)));
        });
        group.bench_function("packed", |b| {
            let opts = DistanceOptions::builder().kernel(KernelPolicy::Packed).build();
            b.iter(|| black_box(opts.pairwise(&packed, &Hamming)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_clusterers, bench_k_sweep, bench_hamming_kernels);
criterion_main!(benches);
