//! Bench: the phases of a TD-AC run (truth vectors → k sweep → per-group
//! discovery) and TD-AC vs its base on the semi-synthetic Exam workload —
//! the Time(s) columns of Tables 6 and 7, whose shape is "TD-AC ≈ one
//! extra base run plus a cheap clustering step".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clustering::{silhouette_paper, Hamming, KMeans, KMeansConfig};
use td_algorithms::{TruthDiscovery, TruthFinder};
use tdac_bench::exam_bench;
use tdac_core::{truth_vector_matrix, Tdac, TdacConfig};

fn bench_phases(c: &mut Criterion) {
    let (dataset, _) = exam_bench(62, 120);
    let view = dataset.view_all();
    let tf = TruthFinder::default();

    let mut group = c.benchmark_group("tdac_phases/exam62");
    group.sample_size(10);

    let obs = tdac_core::Observer::disabled();
    group.bench_function("phase1_truth_vectors", |b| {
        b.iter(|| black_box(truth_vector_matrix(&tf, &view, &obs)));
    });

    let (matrix, _) = truth_vector_matrix(&tf, &view, &obs);
    group.bench_function("phase2_single_kmeans_k4", |b| {
        let km = KMeans::new(KMeansConfig::with_k(4));
        b.iter(|| black_box(km.fit(&matrix).expect("fit")));
    });
    group.bench_function("phase2_silhouette_k4", |b| {
        let asg = KMeans::new(KMeansConfig::with_k(4))
            .fit(&matrix)
            .expect("fit")
            .assignments;
        b.iter(|| black_box(silhouette_paper(&matrix, &asg, &Hamming)));
    });

    group.bench_function("full_pipeline", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });

    group.bench_function("base_alone", |b| {
        b.iter(|| black_box(tf.discover(&view)));
    });

    group.finish();
}

fn bench_limits_overhead(c: &mut Criterion) {
    // The robustness claim of docs/ROBUSTNESS.md: arming the budget
    // machinery (boundary probes, distance precharge, private observer)
    // with generous caps that never fire must cost < 2% of the
    // unlimited pipeline. `scripts/bench.sh` folds the limits_on /
    // limits_off median ratio into BENCH_tdac.json as
    // "limits_overhead".
    use std::time::Duration;
    use tdac_core::ExecutionLimits;

    let (dataset, _) = exam_bench(62, 120);
    let tf = TruthFinder::default();

    // The two sides differ by well under the run-to-run noise floor, so
    // this pair needs more samples than the other groups for the folded
    // ratio to be trustworthy.
    let mut group = c.benchmark_group("limits_overhead/exam62");
    group.sample_size(40);

    group.bench_function("limits_off", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });
    group.bench_function("limits_on", |b| {
        let generous = ExecutionLimits::none()
            .with_deadline(Duration::from_secs(3_600))
            .with_max_distance_evals(u64::MAX / 2)
            .with_max_fixpoint_iterations(u64::MAX / 2);
        let tdac = Tdac::new(TdacConfig {
            limits: generous,
            ..TdacConfig::default()
        });
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });

    group.finish();
}

fn bench_exam_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_7_time/tdac_truthfinder");
    group.sample_size(10);
    for n_attrs in [32usize, 62, 124] {
        let (dataset, _) = exam_bench(n_attrs, 120);
        let tf = TruthFinder::default();
        let tdac = Tdac::new(TdacConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n_attrs), &dataset, |b, d| {
            b.iter(|| black_box(tdac.run(&tf, d).expect("run")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases, bench_limits_overhead, bench_exam_sizes);
criterion_main!(benches);
