//! Bench: the phases of a TD-AC run (truth vectors → k sweep → per-group
//! discovery) and TD-AC vs its base on the semi-synthetic Exam workload —
//! the Time(s) columns of Tables 6 and 7, whose shape is "TD-AC ≈ one
//! extra base run plus a cheap clustering step".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clustering::{silhouette_paper, Hamming, KMeans, KMeansConfig};
use td_algorithms::{TruthDiscovery, TruthFinder};
use tdac_bench::exam_bench;
use tdac_core::{truth_vector_matrix, Tdac, TdacConfig};

fn bench_phases(c: &mut Criterion) {
    let (dataset, _) = exam_bench(62, 120);
    let view = dataset.view_all();
    let tf = TruthFinder::default();

    let mut group = c.benchmark_group("tdac_phases/exam62");
    group.sample_size(10);

    let obs = tdac_core::Observer::disabled();
    group.bench_function("phase1_truth_vectors", |b| {
        b.iter(|| black_box(truth_vector_matrix(&tf, &view, &obs)));
    });

    let (matrix, _) = truth_vector_matrix(&tf, &view, &obs);
    group.bench_function("phase2_single_kmeans_k4", |b| {
        let km = KMeans::new(KMeansConfig::with_k(4));
        b.iter(|| black_box(km.fit(&matrix).expect("fit")));
    });
    group.bench_function("phase2_silhouette_k4", |b| {
        let asg = KMeans::new(KMeansConfig::with_k(4))
            .fit(&matrix)
            .expect("fit")
            .assignments;
        b.iter(|| black_box(silhouette_paper(&matrix, &asg, &Hamming)));
    });

    group.bench_function("full_pipeline", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });

    group.bench_function("base_alone", |b| {
        b.iter(|| black_box(tf.discover(&view)));
    });

    group.finish();
}

fn bench_limits_overhead(c: &mut Criterion) {
    // The robustness claim of docs/ROBUSTNESS.md: arming the budget
    // machinery (boundary probes, distance precharge, private observer)
    // with generous caps that never fire must cost < 2% of the
    // unlimited pipeline. `scripts/bench.sh` folds the limits_on /
    // limits_off median ratio into BENCH_tdac.json as
    // "limits_overhead".
    use std::time::Duration;
    use tdac_core::ExecutionLimits;

    let (dataset, _) = exam_bench(62, 120);
    let tf = TruthFinder::default();

    // The two sides differ by well under the run-to-run noise floor, so
    // this pair needs more samples than the other groups for the folded
    // ratio to be trustworthy.
    let mut group = c.benchmark_group("limits_overhead/exam62");
    group.sample_size(40);

    group.bench_function("limits_off", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });
    group.bench_function("limits_on", |b| {
        let generous = ExecutionLimits::none()
            .with_deadline(Duration::from_secs(3_600))
            .with_max_distance_evals(u64::MAX / 2)
            .with_max_fixpoint_iterations(u64::MAX / 2);
        let tdac = Tdac::new(TdacConfig {
            limits: generous,
            ..TdacConfig::default()
        });
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });

    group.finish();
}

fn bench_exam_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_7_time/tdac_truthfinder");
    group.sample_size(10);
    for n_attrs in [32usize, 62, 124] {
        let (dataset, _) = exam_bench(n_attrs, 120);
        let tf = TruthFinder::default();
        let tdac = Tdac::new(TdacConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n_attrs), &dataset, |b, d| {
            b.iter(|| black_box(tdac.run(&tf, d).expect("run")));
        });
    }
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    // The incremental engine's headline: appending a ~5% claim batch to
    // a live session vs recomputing the whole pipeline on the
    // accumulated claims. Both sides produce the same predictions (the
    // td-verify incremental oracle gates the bit-level contract); the
    // pair's median ratio is folded into BENCH_tdac.json as
    // "streaming_speedup" by scripts/bench.sh.
    use td_model::{ClaimBatch, DatasetBuilder, DeltaDataset};
    use tdac_core::{RepartitionPolicy, TdacSession};

    let (dataset, _) = exam_bench(62, 120);
    let tf = TruthFinder::default();

    // Defer every 20th claim whose entities are already interned: the
    // batch adds no new sources/objects/attributes, so the session
    // takes the pure dirty-attribute maintenance path.
    let mut base = DatasetBuilder::new();
    let mut batch = ClaimBatch::new();
    let mut seen = std::collections::HashSet::new();
    for (i, cl) in dataset.claims().iter().enumerate() {
        let row = (
            dataset.source_name(cl.source),
            dataset.object_name(cl.object),
            dataset.attribute_name(cl.attribute),
            dataset.value(cl.value).clone(),
        );
        let fresh = !seen.contains(&(0u8, cl.source.index()))
            || !seen.contains(&(1, cl.object.index()))
            || !seen.contains(&(2, cl.attribute.index()));
        seen.insert((0, cl.source.index()));
        seen.insert((1, cl.object.index()));
        seen.insert((2, cl.attribute.index()));
        if fresh || i % 20 != 0 {
            base.claim(row.0, row.1, row.2, row.3).expect("consistent claims");
        } else {
            batch.claim(row.0, row.1, row.2, row.3);
        }
    }
    let base = base.build();
    let mut accumulated = DeltaDataset::new(base.clone()).expect("valid base");
    accumulated.apply(&batch).expect("consistent batch");

    let mut group = c.benchmark_group("streaming/exam62");
    group.sample_size(10);

    group.bench_function("full_recompute", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        let accumulated = accumulated.current();
        b.iter(|| black_box(tdac.run(&tf, accumulated).expect("run")));
    });
    group.bench_function("incremental_append", |b| {
        let session = TdacSession::start(
            tf,
            TdacConfig::default(),
            RepartitionPolicy::Never,
            base.clone(),
        )
        .expect("session starts");
        // Each iteration forks the pre-batch session and ingests — the
        // clone is part of the measured time, which only makes the
        // speedup claim conservative.
        b.iter(|| {
            let mut s = session.clone();
            black_box(s.ingest(&batch).expect("ingest"));
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_phases,
    bench_limits_overhead,
    bench_exam_sizes,
    bench_streaming
);
criterion_main!(benches);
