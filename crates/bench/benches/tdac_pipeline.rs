//! Bench: the phases of a TD-AC run (truth vectors → k sweep → per-group
//! discovery) and TD-AC vs its base on the semi-synthetic Exam workload —
//! the Time(s) columns of Tables 6 and 7, whose shape is "TD-AC ≈ one
//! extra base run plus a cheap clustering step".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clustering::{silhouette_paper, Hamming, KMeans, KMeansConfig};
use td_algorithms::{TruthDiscovery, TruthFinder};
use tdac_bench::exam_bench;
use tdac_core::{truth_vector_matrix, Tdac, TdacConfig};

fn bench_phases(c: &mut Criterion) {
    let (dataset, _) = exam_bench(62, 120);
    let view = dataset.view_all();
    let tf = TruthFinder::default();

    let mut group = c.benchmark_group("tdac_phases/exam62");
    group.sample_size(10);

    let obs = tdac_core::Observer::disabled();
    group.bench_function("phase1_truth_vectors", |b| {
        b.iter(|| black_box(truth_vector_matrix(&tf, &view, &obs)));
    });

    let (matrix, _) = truth_vector_matrix(&tf, &view, &obs);
    group.bench_function("phase2_single_kmeans_k4", |b| {
        let km = KMeans::new(KMeansConfig::with_k(4));
        b.iter(|| black_box(km.fit(&matrix).expect("fit")));
    });
    group.bench_function("phase2_silhouette_k4", |b| {
        let asg = KMeans::new(KMeansConfig::with_k(4))
            .fit(&matrix)
            .expect("fit")
            .assignments;
        b.iter(|| black_box(silhouette_paper(&matrix, &asg, &Hamming)));
    });

    group.bench_function("full_pipeline", |b| {
        let tdac = Tdac::new(TdacConfig::default());
        b.iter(|| black_box(tdac.run(&tf, &dataset).expect("run")));
    });

    group.bench_function("base_alone", |b| {
        b.iter(|| black_box(tf.discover(&view)));
    });

    group.finish();
}

fn bench_exam_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_7_time/tdac_truthfinder");
    group.sample_size(10);
    for n_attrs in [32usize, 62, 124] {
        let (dataset, _) = exam_bench(n_attrs, 120);
        let tf = TruthFinder::default();
        let tdac = Tdac::new(TdacConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n_attrs), &dataset, |b, d| {
            b.iter(|| black_box(tdac.run(&tf, d).expect("run")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases, bench_exam_sizes);
criterion_main!(benches);
