//! Bench: cold-loading a packed `.tds` store vs rebuilding the same
//! ready-to-run state from a portable serialization.
//!
//! The store's value proposition (docs/STORAGE.md) is cold-start time:
//! a process that persists its dataset can come back up with the base
//! algorithm's reference truth and the Eq. 1 truth-vector matrix
//! already materialized, instead of re-deriving them. Each group
//! benches the two ways of turning *bytes on disk* into a
//! [`DatasetStore`] that [`Tdac::run_store`] can consume:
//!
//! * `rebuild`   — parse the serde_json `Dataset` document, then
//!   [`Tdac::pack`] (reference fixpoint + truth-vector scatter);
//! * `cold_load` — [`DatasetStore::from_bytes`] on the `.tds` encoding
//!   (checksum walk + interner/claim decode + page adoption).
//!
//! `scripts/bench.sh` folds each `rebuild`/`cold_load` median ratio
//! into `BENCH_tdac.json` under `store_speedups`. A third benchmark
//! times the seeded pipeline itself (`run_from_store`) so the
//! steady-state cost of running from a page is visible next to the
//! cold-start numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::TruthFinder;
use td_model::Dataset;
use tdac_bench::exam_bench;
use tdac_core::{DatasetStore, Tdac, TdacConfig};

fn bench_store_group(c: &mut Criterion, name: &str, dataset: &Dataset) {
    let tdac = Tdac::new(TdacConfig::default());
    let base = TruthFinder::default();
    let tds_bytes = tdac.pack(&base, dataset).to_bytes();
    let json = serde_json::to_string(dataset).expect("serialize");

    let mut group = c.benchmark_group(format!("store/{name}"));
    group.sample_size(10);

    group.bench_function("rebuild", |b| {
        b.iter(|| {
            let dataset: Dataset = serde_json::from_str(&json).expect("parse");
            black_box(tdac.pack(&base, &dataset))
        });
    });
    group.bench_function("cold_load", |b| {
        b.iter(|| black_box(DatasetStore::from_bytes(&tds_bytes).expect("decode")));
    });

    let store = DatasetStore::from_bytes(&tds_bytes).expect("decode");
    group.bench_function("run_from_store", |b| {
        b.iter(|| black_box(tdac.run_store(&base, &store).expect("run_store")));
    });

    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let (exam, _) = exam_bench(62, 120);
    bench_store_group(c, "exam62", &exam);

    let world = generate_synthetic(&SyntheticConfig::ds1().scaled(300));
    bench_store_group(c, "ds1_300", &world.dataset);
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
